//! Measuring mechanism *power* — the paper's Reputation axis.
//!
//! Figure 2 (right) of the paper labels the reputation axis "satisfaction
//! of the reputation mechanism in terms of power as reliability,
//! efficiency and most of all, consistency with the reality". This module
//! makes those three words measurable:
//!
//! * **consistency** — Spearman rank correlation between mechanism scores
//!   and ground-truth provider quality (mapped to `[0, 1]`), plus RMSE;
//! * **reliability** — how well the mechanism separates adversarial from
//!   honest nodes (balanced detection accuracy at the optimal threshold);
//! * **efficiency** — inverse cost: refresh iterations and per-report
//!   message overhead, mapped through `1 / (1 + cost)`.

use crate::mechanism::ReputationMechanism;
use tsn_simnet::NodeId;

/// Weights for combining the three power components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechanismPower {
    /// Weight of consistency-with-reality (the paper: "most of all").
    pub consistency_weight: f64,
    /// Weight of reliability (adversary detection).
    pub reliability_weight: f64,
    /// Weight of efficiency (message/iteration cost).
    pub efficiency_weight: f64,
}

impl Default for MechanismPower {
    fn default() -> Self {
        // "most of all, consistency with the reality"
        MechanismPower {
            consistency_weight: 0.5,
            reliability_weight: 0.3,
            efficiency_weight: 0.2,
        }
    }
}

/// The measured power of a mechanism against a ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Spearman rank correlation with true quality, mapped to `[0, 1]`.
    pub consistency: f64,
    /// Root-mean-square error between scores and true qualities.
    pub rmse: f64,
    /// Balanced accuracy of adversary detection at the best threshold.
    pub reliability: f64,
    /// Efficiency in `[0, 1]` (1 = free).
    pub efficiency: f64,
    /// Refresh iterations observed.
    pub iterations: usize,
    /// Per-report message overhead.
    pub overhead_per_report: usize,
}

impl PowerReport {
    /// The combined power score in `[0, 1]` under `weights`.
    pub fn power(&self, weights: &MechanismPower) -> f64 {
        let total =
            weights.consistency_weight + weights.reliability_weight + weights.efficiency_weight;
        assert!(total > 0.0, "power weights must not all be zero");
        (weights.consistency_weight * self.consistency
            + weights.reliability_weight * self.reliability
            + weights.efficiency_weight * self.efficiency)
            / total
    }
}

/// Evaluates `mechanism` against ground truth.
///
/// `true_quality[i]` is the real success probability of node `i`;
/// `adversarial[i]` says whether node `i` is an adversary. `iterations` is
/// the refresh cost the caller observed.
///
/// # Panics
///
/// Panics if the slices' lengths differ from the mechanism's node count.
pub fn evaluate(
    mechanism: &dyn ReputationMechanism,
    true_quality: &[f64],
    adversarial: &[bool],
    iterations: usize,
) -> PowerReport {
    let n = mechanism.len();
    assert_eq!(true_quality.len(), n, "quality vector length mismatch");
    assert_eq!(adversarial.len(), n, "adversarial vector length mismatch");
    let scores: Vec<f64> = (0..n)
        .map(|i| mechanism.score(NodeId::from_index(i)))
        .collect();
    evaluate_scores(mechanism, scores, true_quality, adversarial, iterations)
}

/// Evaluates `mechanism` against ground truth through an *identity
/// mapping*: behaviour slot `i` is currently known to the mechanism as
/// `identity[i]` (whitewashed slots point at their fresh identity, which
/// may lie beyond the slot range). Ground truth stays slot-indexed —
/// reality knows a whitewashed adversary is the same adversary even
/// though the mechanism sees a newcomer.
///
/// With the identity map `0..n` this is exactly [`evaluate`]
/// (bit-identical floats).
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn evaluate_identities(
    mechanism: &dyn ReputationMechanism,
    identity: &[NodeId],
    true_quality: &[f64],
    adversarial: &[bool],
    iterations: usize,
) -> PowerReport {
    let n = identity.len();
    assert_eq!(true_quality.len(), n, "quality vector length mismatch");
    assert_eq!(adversarial.len(), n, "adversarial vector length mismatch");
    let scores: Vec<f64> = identity.iter().map(|&id| mechanism.score(id)).collect();
    evaluate_scores(mechanism, scores, true_quality, adversarial, iterations)
}

fn evaluate_scores(
    mechanism: &dyn ReputationMechanism,
    scores: Vec<f64>,
    true_quality: &[f64],
    adversarial: &[bool],
    iterations: usize,
) -> PowerReport {
    let n = scores.len();
    // Consistency: Spearman mapped from [-1, 1] to [0, 1]; an undefined
    // correlation (constant scores) counts as zero consistency.
    let consistency = tsn_graph::metrics::spearman(&scores, true_quality)
        .map(|r| (r + 1.0) / 2.0)
        .unwrap_or(0.5);

    let rmse = if n == 0 {
        0.0
    } else {
        (scores
            .iter()
            .zip(true_quality)
            .map(|(s, q)| (s - q).powi(2))
            .sum::<f64>()
            / n as f64)
            .sqrt()
    };

    let reliability = balanced_detection_accuracy(&scores, adversarial);

    let cost = iterations as f64 / 100.0 + mechanism.overhead_per_report() as f64 / 10.0;
    let efficiency = 1.0 / (1.0 + cost);

    PowerReport {
        consistency,
        rmse,
        reliability,
        efficiency,
        iterations,
        overhead_per_report: mechanism.overhead_per_report(),
    }
}

/// Balanced accuracy `(TPR + TNR) / 2` of classifying adversaries as the
/// low-score class, maximized over all score thresholds. 0.5 means chance.
///
/// A single sorted sweep with running counts — O(n log n) where the
/// naive per-threshold rescan is O(n²) — producing the same counts (and
/// therefore bit-identical accuracies) at every distinct threshold. The
/// scenario loop calls this once per round, so the quadratic version
/// showed up in profiles.
///
/// NaN scores are well-defined: `NaN <= t` is false for every threshold,
/// so a NaN-scored sample is never flagged (it always counts on the
/// high-score side). The previous sweep fed NaNs through a
/// `partial_cmp`-with-`Equal`-fallback sort, whose inconsistent
/// comparator left the flag counts — and the result — dependent on the
/// sort's internal visiting order.
pub fn balanced_detection_accuracy(scores: &[f64], adversarial: &[bool]) -> f64 {
    let positives = adversarial.iter().filter(|&&a| a).count();
    let negatives = adversarial.len() - positives;
    if positives == 0 || negatives == 0 {
        return 0.5; // degenerate: nothing to separate
    }
    // Only finite-or-infinite scores are candidate thresholds; NaN
    // samples still count toward positives/negatives above but can never
    // be flagged (consistent with the `<=` semantics).
    let mut order: Vec<(f64, bool)> = scores
        .iter()
        .copied()
        .zip(adversarial.iter().copied())
        .filter(|(s, _)| !s.is_nan())
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut best: f64 = 0.5;
    let mut flagged_adversaries = 0usize; // adversaries with score <= t
    let mut flagged_honest = 0usize; // honest with score <= t
    let mut i = 0;
    while i < order.len() {
        // Consume every sample tied at this threshold before scoring it
        // (`partial_cmp`, not `total_cmp`: -0.0 and 0.0 are one tie
        // group, exactly as `<=` would group them).
        let threshold = order[i].0;
        while i < order.len()
            && order[i].0.partial_cmp(&threshold) != Some(std::cmp::Ordering::Greater)
        {
            if order[i].1 {
                flagged_adversaries += 1;
            } else {
                flagged_honest += 1;
            }
            i += 1;
        }
        let tp = flagged_adversaries;
        let tn = negatives - flagged_honest;
        let bal = (tp as f64 / positives as f64 + tn as f64 / negatives as f64) / 2.0;
        best = best.max(bal);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beta::BetaReputation;
    use crate::gathering::{DisclosurePolicy, FeedbackReport};
    use crate::mechanism::{InteractionOutcome, NoReputation};
    use tsn_simnet::SimTime;

    fn trained_beta() -> BetaReputation {
        let mut m = BetaReputation::new(4).without_credibility_weighting();
        let full = DisclosurePolicy::full();
        // Nodes 0,1 good; 2,3 bad.
        for _ in 0..20 {
            for good in [0u32, 1] {
                m.record(&full.view(&FeedbackReport {
                    rater: NodeId(3 - good),
                    ratee: NodeId(good),
                    outcome: InteractionOutcome::Success { quality: 1.0 },
                    topic: None,
                    at: SimTime::ZERO,
                }));
            }
            for bad in [2u32, 3] {
                m.record(&full.view(&FeedbackReport {
                    rater: NodeId(bad - 2),
                    ratee: NodeId(bad),
                    outcome: InteractionOutcome::Failure,
                    topic: None,
                    at: SimTime::ZERO,
                }));
            }
        }
        m
    }

    #[test]
    fn perfect_mechanism_scores_high_power() {
        let m = trained_beta();
        let truth = [0.9, 0.9, 0.1, 0.1];
        let adv = [false, false, true, true];
        let report = evaluate(&m, &truth, &adv, 0);
        assert!(
            report.consistency > 0.9,
            "consistency {}",
            report.consistency
        );
        assert_eq!(report.reliability, 1.0);
        assert!(report.rmse < 0.2, "rmse {}", report.rmse);
        assert!(report.power(&MechanismPower::default()) > 0.8);
    }

    #[test]
    fn blind_mechanism_scores_chance() {
        let m = NoReputation::new(4);
        let truth = [0.9, 0.9, 0.1, 0.1];
        let adv = [false, false, true, true];
        let report = evaluate(&m, &truth, &adv, 0);
        assert_eq!(report.consistency, 0.5, "constant scores → undefined → 0.5");
        assert_eq!(report.reliability, 0.5);
    }

    #[test]
    fn identity_mapped_evaluation_matches_and_exposes_whitewashing() {
        let mut m = trained_beta();
        let truth = [0.9, 0.9, 0.1, 0.1];
        let adv = [false, false, true, true];
        // The dense identity map is bit-identical to plain evaluate().
        let dense: Vec<NodeId> = (0..4).map(NodeId::from_index).collect();
        let plain = evaluate(&m, &truth, &adv, 0);
        let mapped = evaluate_identities(&m, &dense, &truth, &adv, 0);
        assert_eq!(plain, mapped);

        // Adversary slot 3 whitewashes: the mechanism now knows it as a
        // fresh identity (4) at the prior. Reality still knows slot 3 is
        // the same low-quality adversary, so measured power drops.
        m.resize(5);
        let washed = [NodeId(0), NodeId(1), NodeId(2), NodeId(4)];
        let after = evaluate_identities(&m, &washed, &truth, &adv, 0);
        assert!(
            after.rmse > plain.rmse,
            "whitewashing hurts accuracy: {} vs {}",
            after.rmse,
            plain.rmse
        );
        // Reliability cannot improve (the washed score sits at the
        // prior, between the classes).
        assert!(after.reliability <= plain.reliability);
    }

    #[test]
    fn detection_accuracy_perfect_separation() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let adv = [false, false, true, true];
        assert_eq!(balanced_detection_accuracy(&scores, &adv), 1.0);
    }

    #[test]
    fn detection_accuracy_inverted_scores_is_poor() {
        // Mechanism fooled: adversaries have HIGH scores. Flagging by low
        // score then fails; balanced accuracy stays at chance (0.5 floor).
        let scores = [0.1, 0.2, 0.9, 0.8];
        let adv = [false, false, true, true];
        let acc = balanced_detection_accuracy(&scores, &adv);
        assert!((0.4..=0.6).contains(&acc), "acc {acc}");
    }

    #[test]
    fn detection_degenerate_populations() {
        assert_eq!(
            balanced_detection_accuracy(&[0.5, 0.6], &[false, false]),
            0.5
        );
        assert_eq!(balanced_detection_accuracy(&[0.5, 0.6], &[true, true]), 0.5);
    }

    #[test]
    fn efficiency_decreases_with_cost() {
        let m = trained_beta();
        let truth = [0.9, 0.9, 0.1, 0.1];
        let adv = [false, false, true, true];
        let cheap = evaluate(&m, &truth, &adv, 0);
        let costly = evaluate(&m, &truth, &adv, 500);
        assert!(cheap.efficiency > costly.efficiency);
    }

    #[test]
    fn power_weights_normalize() {
        let report = PowerReport {
            consistency: 1.0,
            rmse: 0.0,
            reliability: 0.0,
            efficiency: 0.0,
            iterations: 0,
            overhead_per_report: 0,
        };
        let only_consistency = MechanismPower {
            consistency_weight: 2.0,
            reliability_weight: 0.0,
            efficiency_weight: 0.0,
        };
        assert_eq!(report.power(&only_consistency), 1.0);
        let balanced = MechanismPower::default();
        assert!((report.power(&balanced) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let m = NoReputation::new(3);
        let _ = evaluate(&m, &[0.5; 2], &[false; 3], 0);
    }

    #[test]
    fn sweep_matches_naive_per_threshold_rescan() {
        // The O(n log n) sweep must reproduce the quadratic reference
        // bit-for-bit, ties and duplicates included.
        fn naive(scores: &[f64], adversarial: &[bool]) -> f64 {
            let positives = adversarial.iter().filter(|&&a| a).count();
            let negatives = adversarial.len() - positives;
            if positives == 0 || negatives == 0 {
                return 0.5;
            }
            let mut thresholds: Vec<f64> = scores.to_vec();
            thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap());
            thresholds.dedup();
            let mut best: f64 = 0.5;
            for &t in &thresholds {
                let tp = scores
                    .iter()
                    .zip(adversarial)
                    .filter(|(s, &adv)| adv && **s <= t)
                    .count();
                let tn = scores
                    .iter()
                    .zip(adversarial)
                    .filter(|(s, &adv)| !adv && **s > t)
                    .count();
                let bal = (tp as f64 / positives as f64 + tn as f64 / negatives as f64) / 2.0;
                best = best.max(bal);
            }
            best
        }
        // NaN scores must not wedge the sweep (the tie loop advances
        // past values that do not compare greater, NaN included).
        let acc = balanced_detection_accuracy(&[0.5, f64::NAN, 0.2], &[true, false, false]);
        assert!((0.0..=1.0).contains(&acc));

        let mut rng = tsn_simnet::SimRng::seed_from_u64(5);
        for case in 0..50 {
            let n = 3 + (case % 17);
            let scores: Vec<f64> = (0..n)
                .map(|_| (rng.gen_range(0..8u32) as f64) / 8.0) // force ties
                .collect();
            let adversarial: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
            assert_eq!(
                balanced_detection_accuracy(&scores, &adversarial).to_bits(),
                naive(&scores, &adversarial).to_bits(),
                "case {case}: scores {scores:?} adv {adversarial:?}"
            );
        }
    }
}
