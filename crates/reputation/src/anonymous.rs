//! Anonymity-preserving feedback wrappers (paper refs \[2\], \[4\]).
//!
//! Androulaki et al. and Bethencourt et al. show reputation can work over
//! anonymous reports at some accuracy cost. [`Anonymized`] wraps any
//! [`ReputationMechanism`] with the two standard ingredients:
//!
//! * **identity stripping** — the rater field is removed before the inner
//!   mechanism sees the report (unconditionally, or with probability
//!   `strip_probability` to model partial pseudonymity);
//! * **randomized response** — the success bit is flipped with probability
//!   `flip_probability`, giving plausible deniability for any individual
//!   report (local differential privacy for one bit: ε = ln((1−p)/p)).
//!
//! The wrapper lets experiments quantify the privacy→power degradation on
//! *every* mechanism uniformly, which is how the Figure-2 sweep treats
//! anonymization strength as a continuous knob.

use crate::gathering::ReportView;
use crate::mechanism::{MechanismKind, ReputationMechanism};
use tsn_simnet::{NodeId, SimRng};

/// Anonymization strength.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnonymizationConfig {
    /// Probability that the rater identity is stripped from a report.
    pub strip_probability: f64,
    /// Probability that the success bit (and detail) is flipped
    /// (randomized response). Must be `< 0.5` to preserve any signal.
    pub flip_probability: f64,
}

impl Default for AnonymizationConfig {
    fn default() -> Self {
        AnonymizationConfig {
            strip_probability: 1.0,
            flip_probability: 0.0,
        }
    }
}

impl AnonymizationConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.strip_probability) {
            return Err("strip_probability must be in [0,1]".into());
        }
        if !(0.0..0.5).contains(&self.flip_probability) {
            return Err("flip_probability must be in [0,0.5)".into());
        }
        Ok(())
    }

    /// The local differential-privacy budget of the randomized response,
    /// `ε = ln((1−p)/p)`; `f64::INFINITY` when no flipping happens.
    pub fn epsilon(&self) -> f64 {
        if self.flip_probability == 0.0 {
            f64::INFINITY
        } else {
            ((1.0 - self.flip_probability) / self.flip_probability).ln()
        }
    }
}

/// A mechanism wrapped with anonymization.
#[derive(Debug)]
pub struct Anonymized<M> {
    inner: M,
    config: AnonymizationConfig,
    rng: SimRng,
    stripped: u64,
    flipped: u64,
    total: u64,
}

impl<M: ReputationMechanism> Anonymized<M> {
    /// Wraps `inner`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(inner: M, config: AnonymizationConfig, rng: SimRng) -> Self {
        if let Err(e) = config.validate() {
            // tsn-lint: allow(no-unwrap, "documented contract: new() panics on a config that validate() rejects; fallible callers validate first")
            panic!("invalid anonymization config: {e}");
        }
        Anonymized {
            inner,
            config,
            rng,
            stripped: 0,
            flipped: 0,
            total: 0,
        }
    }

    /// The wrapped mechanism.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner mechanism.
    pub fn into_inner(self) -> M {
        self.inner
    }

    /// Fraction of reports whose identity was stripped so far.
    pub fn observed_strip_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.stripped as f64 / self.total as f64
        }
    }

    /// Fraction of reports whose outcome was flipped so far.
    pub fn observed_flip_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.flipped as f64 / self.total as f64
        }
    }
}

impl<M: ReputationMechanism> ReputationMechanism for Anonymized<M> {
    fn kind(&self) -> MechanismKind {
        self.inner.kind()
    }

    fn resize(&mut self, n: usize) {
        self.inner.resize(n);
    }

    fn record(&mut self, report: &ReportView) {
        self.total += 1;
        let mut sanitized = *report;
        if sanitized.rater.is_some() && self.rng.gen_bool(self.config.strip_probability) {
            sanitized.rater = None;
            self.stripped += 1;
        }
        if self.rng.gen_bool(self.config.flip_probability) {
            sanitized.success = !sanitized.success;
            sanitized.quality = sanitized.quality.map(|q| 1.0 - q);
            self.flipped += 1;
        }
        self.inner.record(&sanitized);
    }

    fn refresh(&mut self) -> usize {
        self.inner.refresh()
    }

    fn score(&self, node: NodeId) -> f64 {
        self.inner.score(node)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn overhead_per_report(&self) -> usize {
        // Anonymous submission adds a mix/blind-signature round trip.
        self.inner.overhead_per_report() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beta::BetaReputation;
    use crate::gathering::{DisclosurePolicy, FeedbackReport};
    use crate::mechanism::InteractionOutcome;
    use tsn_simnet::SimTime;

    fn report(good: bool) -> ReportView {
        DisclosurePolicy::full().view(&FeedbackReport {
            rater: NodeId(0),
            ratee: NodeId(1),
            outcome: if good {
                InteractionOutcome::Success { quality: 1.0 }
            } else {
                InteractionOutcome::Failure
            },
            topic: None,
            at: SimTime::ZERO,
        })
    }

    #[test]
    fn full_strip_removes_all_identities() {
        let inner = BetaReputation::new(2);
        let mut wrapped = Anonymized::new(
            inner,
            AnonymizationConfig {
                strip_probability: 1.0,
                flip_probability: 0.0,
            },
            SimRng::seed_from_u64(0),
        );
        for _ in 0..50 {
            wrapped.record(&report(true));
        }
        assert_eq!(wrapped.observed_strip_rate(), 1.0);
        assert_eq!(wrapped.observed_flip_rate(), 0.0);
        assert!(wrapped.score(NodeId(1)) > 0.9);
    }

    #[test]
    fn flip_rate_matches_configuration() {
        let inner = BetaReputation::new(2);
        let mut wrapped = Anonymized::new(
            inner,
            AnonymizationConfig {
                strip_probability: 0.0,
                flip_probability: 0.25,
            },
            SimRng::seed_from_u64(1),
        );
        for _ in 0..4000 {
            wrapped.record(&report(true));
        }
        let rate = wrapped.observed_flip_rate();
        assert!((rate - 0.25).abs() < 0.03, "flip rate {rate}");
    }

    #[test]
    fn noise_biases_scores_toward_the_middle() {
        let run = |flip: f64| {
            let mut wrapped = Anonymized::new(
                BetaReputation::new(2),
                AnonymizationConfig {
                    strip_probability: 1.0,
                    flip_probability: flip,
                },
                SimRng::seed_from_u64(2),
            );
            for _ in 0..500 {
                wrapped.record(&report(true));
            }
            wrapped.score(NodeId(1))
        };
        let clean = run(0.0);
        let noisy = run(0.3);
        assert!(
            clean > noisy,
            "noise must pull the score down: {clean} vs {noisy}"
        );
        assert!(
            (noisy - 0.7).abs() < 0.05,
            "randomized response converges to 1−p"
        );
    }

    #[test]
    fn epsilon_budget() {
        let c = AnonymizationConfig {
            strip_probability: 1.0,
            flip_probability: 0.25,
        };
        assert!((c.epsilon() - 3.0f64.ln()).abs() < 1e-12);
        assert_eq!(AnonymizationConfig::default().epsilon(), f64::INFINITY);
    }

    #[test]
    fn kind_and_len_pass_through() {
        let wrapped = Anonymized::new(
            BetaReputation::new(7),
            AnonymizationConfig::default(),
            SimRng::seed_from_u64(3),
        );
        assert_eq!(wrapped.kind(), MechanismKind::Beta);
        assert_eq!(wrapped.len(), 7);
        assert_eq!(wrapped.overhead_per_report(), 3);
        assert_eq!(wrapped.inner().len(), 7);
    }

    #[test]
    fn config_validation() {
        assert!(AnonymizationConfig {
            strip_probability: 2.0,
            flip_probability: 0.0
        }
        .validate()
        .is_err());
        assert!(AnonymizationConfig {
            strip_probability: 0.5,
            flip_probability: 0.5
        }
        .validate()
        .is_err());
        assert!(AnonymizationConfig::default().validate().is_ok());
    }

    #[test]
    fn into_inner_returns_mechanism() {
        let mut wrapped = Anonymized::new(
            BetaReputation::new(2),
            AnonymizationConfig::default(),
            SimRng::seed_from_u64(4),
        );
        for _ in 0..10 {
            wrapped.record(&report(true));
        }
        let inner = wrapped.into_inner();
        assert!(inner.score(NodeId(1)) > 0.8);
    }
}
