//! Incrementally maintained sparse local-trust storage.
//!
//! EigenTrust and PowerTrust both aggregate per-(rater, ratee) local
//! trust and then run a power iteration over the row-normalized matrix.
//! The original implementation kept the cells in a
//! `HashMap<(u32, u32), _>` and rebuilt row storage from scratch on
//! every refresh — and, worse, `HashMap`'s per-instance random iteration
//! order made the floating-point accumulation order (and therefore the
//! low bits of every score) irreproducible between runs.
//!
//! [`LocalMatrix`] replaces that with a CSR-style adjacency the
//! `record()` path updates in place: one row per rater, each row a
//! ratee-sorted vector of cells. Refreshes iterate rows in rater order
//! and cells in ratee order, so
//!
//! * no per-refresh rebuild: row storage persists across refreshes and
//!   `upsert` touches only the affected row;
//! * deterministic accumulation order: results are bit-identical across
//!   runs, processes and thread counts;
//! * cheap clones: a handful of flat `Vec` copies instead of re-hashing
//!   every entry (the testbed clones mechanisms per experiment arm).

/// A sparse row-major matrix of per-(rater, ratee) cells, sorted by
/// ratee within each row.
#[derive(Debug, Clone, Default)]
pub(crate) struct LocalMatrix<C> {
    rows: Vec<Vec<(u32, C)>>,
}

impl<C> LocalMatrix<C> {
    /// Creates an empty matrix with `n` rows.
    pub fn new(n: usize) -> Self {
        LocalMatrix {
            rows: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of rows (raters).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Grows to at least `n` rows.
    pub fn resize(&mut self, n: usize) {
        if n > self.rows.len() {
            self.rows.resize_with(n, Vec::new);
        }
    }

    /// The cells of one row, in ascending ratee order.
    pub fn row(&self, rater: usize) -> &[(u32, C)] {
        &self.rows[rater]
    }

    /// Iterates `(rater, ratee, cell)` in ascending (rater, ratee) order —
    /// the deterministic accumulation order every refresh uses.
    #[cfg(test)]
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &C)> {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().map(move |(j, c)| (i as u32, *j, c)))
    }

    /// Number of stored cells.
    #[cfg(test)]
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

impl<C: Default> LocalMatrix<C> {
    /// The cell for `(rater, ratee)`, inserted at its sorted position if
    /// absent. O(log d) to find, O(d) to insert, for row degree `d`.
    /// (Production record paths go through [`LocalMatrix::upsert_memo`];
    /// this single-shot form remains as the reference for tests.)
    #[cfg(test)]
    pub fn upsert(&mut self, rater: u32, ratee: u32) -> &mut C {
        self.upsert_memo(rater, ratee, &mut UpsertMemo::default())
    }

    /// [`LocalMatrix::upsert`] through a caller-held memo: when the
    /// `(rater, ratee)` key matches the memo (the previous upsert), the
    /// cell position is reused without re-searching the row. Batched
    /// merges — ballot-stuffed copies, shard outboxes drained in rater
    /// order — are mostly such runs. The memo is invalidated on any key
    /// change, so interleaved keys stay correct (just un-memoized).
    pub fn upsert_memo(&mut self, rater: u32, ratee: u32, memo: &mut UpsertMemo) -> &mut C {
        let row = &mut self.rows[rater as usize];
        if memo.key == Some((rater, ratee)) {
            return &mut row[memo.pos].1;
        }
        let pos = match row.binary_search_by_key(&ratee, |&(j, _)| j) {
            Ok(pos) => pos,
            Err(pos) => {
                row.insert(pos, (ratee, C::default()));
                pos
            }
        };
        *memo = UpsertMemo {
            key: Some((rater, ratee)),
            pos,
        };
        &mut row[pos].1
    }
}

/// One-cell memo for [`LocalMatrix::upsert_memo`]. A fresh (default)
/// memo always misses, so `upsert` is the degenerate single-shot case.
#[derive(Debug, Clone, Default)]
pub(crate) struct UpsertMemo {
    key: Option<(u32, u32)>,
    pos: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_inserts_sorted_and_updates_in_place() {
        let mut m: LocalMatrix<f64> = LocalMatrix::new(3);
        *m.upsert(1, 5) += 1.0;
        *m.upsert(1, 2) += 2.0;
        *m.upsert(1, 5) += 3.0;
        assert_eq!(m.row(1), &[(2, 2.0), (5, 4.0)]);
        assert_eq!(m.row(0), &[]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn iter_is_in_row_major_sorted_order() {
        let mut m: LocalMatrix<u64> = LocalMatrix::new(3);
        *m.upsert(2, 1) += 1;
        *m.upsert(0, 9) += 1;
        *m.upsert(0, 3) += 1;
        let order: Vec<(u32, u32)> = m.iter().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(order, vec![(0, 3), (0, 9), (2, 1)]);
    }

    #[test]
    fn memoized_upsert_matches_plain_upsert() {
        // Same key sequence through a memo and through plain upserts
        // must produce identical matrices — runs, interleavings and
        // memo-invalidating inserts included.
        let keys = [
            (1u32, 5u32),
            (1, 5),
            (1, 5),
            (1, 2), // invalidates the memo, inserts before pos
            (1, 5), // re-search after the shift
            (0, 7),
            (1, 5),
        ];
        let mut plain: LocalMatrix<u64> = LocalMatrix::new(3);
        let mut memoized: LocalMatrix<u64> = LocalMatrix::new(3);
        let mut memo = UpsertMemo::default();
        for &(i, j) in &keys {
            *plain.upsert(i, j) += 1;
            *memoized.upsert_memo(i, j, &mut memo) += 1;
        }
        for row in 0..3 {
            assert_eq!(plain.row(row), memoized.row(row));
        }
        assert_eq!(memoized.row(1), &[(2, 1), (5, 5)]);
    }

    #[test]
    fn resize_only_grows() {
        let mut m: LocalMatrix<f64> = LocalMatrix::new(2);
        m.resize(5);
        assert_eq!(m.len(), 5);
        m.resize(1);
        assert_eq!(m.len(), 5);
        *m.upsert(4, 0) += 1.0;
        assert_eq!(m.row(4).len(), 1);
    }
}
