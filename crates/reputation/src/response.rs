//! Response — the third taxonomy block: acting on scores when choosing an
//! interaction partner.

use tsn_simnet::{NodeId, SimRng};

/// Partner-selection policy applied to a candidate set with known scores.
///
/// ```
/// use tsn_reputation::SelectionPolicy;
/// use tsn_simnet::{NodeId, SimRng};
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let candidates = [NodeId(0), NodeId(1)];
/// let best = SelectionPolicy::Best
///     .select(&candidates, |n| if n.0 == 1 { 0.9 } else { 0.1 }, &mut rng)
///     .expect("candidates are non-empty");
/// assert_eq!(best, NodeId(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionPolicy {
    /// Uniform choice — ignores reputation entirely (the `None` baseline).
    Random,
    /// Always the highest-scored candidate (ties → lowest id).
    Best,
    /// Probability proportional to `score^sharpness`; `sharpness` = 1 is
    /// plain score-proportional, higher values approach `Best`, 0 is
    /// `Random`. Keeps exploration alive, which reputation systems need to
    /// discover newcomers.
    Proportional {
        /// Exponent applied to scores before normalization.
        sharpness: f64,
    },
    /// Uniform choice among candidates with `score >= threshold`; falls
    /// back to the best-scored candidate when none qualifies.
    Threshold {
        /// Minimum acceptable score.
        threshold: f64,
    },
}

impl SelectionPolicy {
    /// Standard policy set used in sweeps.
    pub const SWEEP: [SelectionPolicy; 4] = [
        SelectionPolicy::Random,
        SelectionPolicy::Best,
        SelectionPolicy::Proportional { sharpness: 2.0 },
        SelectionPolicy::Threshold { threshold: 0.5 },
    ];

    /// Short label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            SelectionPolicy::Random => "random",
            SelectionPolicy::Best => "best",
            SelectionPolicy::Proportional { .. } => "proportional",
            SelectionPolicy::Threshold { .. } => "threshold",
        }
    }

    /// Picks one provider among `candidates`, whose reputation is given by
    /// `score(candidate)`. Returns `None` when `candidates` is empty.
    ///
    /// Allocates internal scratch; hot loops should hold a
    /// [`SelectionScratch`] and call [`SelectionPolicy::select_with`]
    /// instead.
    pub fn select(
        self,
        candidates: &[NodeId],
        score: impl FnMut(NodeId) -> f64,
        rng: &mut SimRng,
    ) -> Option<NodeId> {
        self.select_with(candidates, score, rng, &mut SelectionScratch::default())
    }

    /// [`SelectionPolicy::select`] with caller-provided scratch buffers,
    /// so a selection performs no allocation. Draw order, draw count and
    /// the selected candidate are identical to `select` for the same RNG
    /// state.
    pub fn select_with(
        self,
        candidates: &[NodeId],
        mut score: impl FnMut(NodeId) -> f64,
        rng: &mut SimRng,
        scratch: &mut SelectionScratch,
    ) -> Option<NodeId> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            SelectionPolicy::Random => rng.choose(candidates).copied(),
            SelectionPolicy::Best => {
                // Score each candidate once (`max_by` would re-score per
                // comparison), then keep `max_by`'s exact tie semantics.
                scratch.weights.clear();
                scratch.weights.extend(candidates.iter().map(|&c| score(c)));
                candidates
                    .iter()
                    .copied()
                    .zip(scratch.weights.iter().copied())
                    .max_by(|&(a, sa), &(b, sb)| {
                        sa.partial_cmp(&sb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            // Prefer the lower id on ties (max_by keeps the
                            // last maximal element, so compare ids in
                            // reverse).
                            .then(b.cmp(&a))
                    })
                    .map(|(c, _)| c)
            }
            SelectionPolicy::Proportional { sharpness } => {
                scratch.weights.clear();
                scratch.weights.extend(
                    candidates
                        .iter()
                        .map(|&c| score(c).max(0.0).powf(sharpness.max(0.0))),
                );
                match rng.choose_weighted_index(&scratch.weights) {
                    Some(i) => Some(candidates[i]),
                    // All-zero scores: fall back to uniform.
                    None => rng.choose(candidates).copied(),
                }
            }
            SelectionPolicy::Threshold { threshold } => {
                scratch.qualified.clear();
                scratch.qualified.extend(
                    candidates
                        .iter()
                        .copied()
                        .filter(|&c| score(c) >= threshold),
                );
                if scratch.qualified.is_empty() {
                    SelectionPolicy::Best.select_with(candidates, score, rng, scratch)
                } else {
                    rng.choose(&scratch.qualified).copied()
                }
            }
        }
    }
}

/// Reusable buffers for [`SelectionPolicy::select_with`]; one instance
/// per interaction loop keeps partner selection allocation-free.
#[derive(Debug, Clone, Default)]
pub struct SelectionScratch {
    weights: Vec<f64>,
    qualified: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut rng = SimRng::seed_from_u64(0);
        for policy in SelectionPolicy::SWEEP {
            assert_eq!(policy.select(&[], |_| 1.0, &mut rng), None);
        }
    }

    #[test]
    fn best_picks_highest_score() {
        let mut rng = SimRng::seed_from_u64(1);
        let cands = nodes(4);
        let chosen = SelectionPolicy::Best
            .select(&cands, |n| [0.2, 0.9, 0.5, 0.7][n.index()], &mut rng)
            .unwrap();
        assert_eq!(chosen, NodeId(1));
    }

    #[test]
    fn best_breaks_ties_by_lowest_id() {
        let mut rng = SimRng::seed_from_u64(2);
        let chosen = SelectionPolicy::Best
            .select(&nodes(3), |_| 0.5, &mut rng)
            .unwrap();
        assert_eq!(chosen, NodeId(0));
    }

    #[test]
    fn random_is_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(3);
        let cands = nodes(4);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            let c = SelectionPolicy::Random
                .select(&cands, |_| 0.0, &mut rng)
                .unwrap();
            counts[c.index()] += 1;
        }
        for c in counts {
            assert!((c as f64 / 8000.0 - 0.25).abs() < 0.03, "{counts:?}");
        }
    }

    #[test]
    fn proportional_follows_scores() {
        let mut rng = SimRng::seed_from_u64(4);
        let cands = nodes(2);
        let mut high = 0usize;
        for _ in 0..10_000 {
            let c = SelectionPolicy::Proportional { sharpness: 1.0 }
                .select(&cands, |n| if n.0 == 0 { 0.25 } else { 0.75 }, &mut rng)
                .unwrap();
            if c.0 == 1 {
                high += 1;
            }
        }
        let rate = high as f64 / 10_000.0;
        assert!((rate - 0.75).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn proportional_sharpness_concentrates() {
        let mut rng = SimRng::seed_from_u64(5);
        let cands = nodes(2);
        let pick_rate = |sharpness: f64, rng: &mut SimRng| {
            let mut high = 0usize;
            for _ in 0..5000 {
                let c = SelectionPolicy::Proportional { sharpness }
                    .select(&cands, |n| if n.0 == 0 { 0.4 } else { 0.6 }, rng)
                    .unwrap();
                if c.0 == 1 {
                    high += 1;
                }
            }
            high as f64 / 5000.0
        };
        let soft = pick_rate(1.0, &mut rng);
        let sharp = pick_rate(8.0, &mut rng);
        assert!(
            sharp > soft,
            "sharper exponent favours the better node more: {sharp} vs {soft}"
        );
    }

    #[test]
    fn proportional_all_zero_scores_falls_back_to_uniform() {
        let mut rng = SimRng::seed_from_u64(6);
        let c =
            SelectionPolicy::Proportional { sharpness: 2.0 }.select(&nodes(3), |_| 0.0, &mut rng);
        assert!(c.is_some());
    }

    #[test]
    fn threshold_filters_and_falls_back() {
        let mut rng = SimRng::seed_from_u64(7);
        let cands = nodes(3);
        // Only node 2 qualifies.
        for _ in 0..20 {
            let c = SelectionPolicy::Threshold { threshold: 0.6 }
                .select(&cands, |n| [0.1, 0.5, 0.8][n.index()], &mut rng)
                .unwrap();
            assert_eq!(c, NodeId(2));
        }
        // Nobody qualifies → best.
        let c = SelectionPolicy::Threshold { threshold: 0.99 }
            .select(&cands, |n| [0.1, 0.5, 0.8][n.index()], &mut rng)
            .unwrap();
        assert_eq!(c, NodeId(2));
    }

    #[test]
    fn select_with_matches_select_draw_for_draw() {
        // The scratch-based path must consume the same RNG draws and pick
        // the same candidate as the allocating wrapper.
        let cands = nodes(6);
        let score = |n: NodeId| [0.1, 0.0, 0.55, 0.55, 0.9, 0.3][n.index()];
        for policy in SelectionPolicy::SWEEP {
            let mut scratch = SelectionScratch::default();
            for seed in 0..20 {
                let mut rng_a = SimRng::seed_from_u64(seed);
                let mut rng_b = SimRng::seed_from_u64(seed);
                let a = policy.select(&cands, score, &mut rng_a);
                let b = policy.select_with(&cands, score, &mut rng_b, &mut scratch);
                assert_eq!(a, b, "{policy:?} seed {seed}");
                // Same draw count ⇒ identical next draw.
                assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "{policy:?} seed {seed}");
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SelectionPolicy::Random.label(), "random");
        assert_eq!(
            SelectionPolicy::Threshold { threshold: 0.1 }.label(),
            "threshold"
        );
        assert_eq!(SelectionPolicy::SWEEP.len(), 4);
    }
}
