//! The `tsn-lint` CLI.
//!
//! ```text
//! tsn-lint [--json] [--root <dir>]
//! ```
//!
//! With no `--root`, the workspace is located by walking up from the
//! current directory to the first `Cargo.toml` that declares
//! `[workspace]` — so `cargo run -p tsn-lint` works from anywhere in
//! the tree. Exit codes: `0` clean, `1` findings, `2` usage/I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use tsn_lint::{lint_workspace, render_json, render_text};

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("tsn-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: tsn-lint [--json] [--root <workspace-dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tsn-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!(
                "tsn-lint: no workspace root found walking up from the current directory; \
                 pass --root <dir>"
            );
            return ExitCode::from(2);
        }
    };

    match lint_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", render_json(&report));
            } else {
                print!("{}", render_text(&report));
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("tsn-lint: failed to lint {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
