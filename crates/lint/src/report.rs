//! Diagnostic rendering: compiler-style text and machine-readable JSON.
//!
//! The JSON form reuses [`tsn_core::json`] (the workspace's hand-rolled
//! emitter) and includes the full resolved `Cargo.lock` package list,
//! so dependency audits can diff the workspace's resolution PR-over-PR
//! straight from CI artifacts.

use std::fmt::Write as _;

use tsn_core::json::{escape_str, JsonValue};

use crate::engine::LintReport;
use crate::rules::RuleId;

/// Renders findings as `path:line: rule: message` diagnostics plus a
/// summary line, the shape terminals and CI annotations understand.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(
            out,
            "{}:{}: {}: {}",
            f.path,
            f.line,
            f.rule.name(),
            f.message
        );
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "    | {}", f.snippet);
        }
    }
    let _ = writeln!(
        out,
        "tsn-lint: {} files scanned, {} finding{}, {} suppressed by justified pragmas, \
         {} workspace packages resolved",
        report.files_scanned,
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.suppressed.len(),
        report.packages.len(),
    );
    out
}

/// Renders the full report as a JSON document.
pub fn render_json(report: &LintReport) -> String {
    let findings = JsonValue::array(report.findings.iter().map(|f| {
        JsonValue::object([
            ("rule", JsonValue::str(f.rule.name())),
            ("path", JsonValue::str(&f.path)),
            ("line", JsonValue::from(f.line)),
            ("message", JsonValue::str(&f.message)),
            ("snippet", JsonValue::str(&f.snippet)),
        ])
    }));
    let suppressed = JsonValue::array(report.suppressed.iter().map(|s| {
        JsonValue::object([
            ("rule", JsonValue::str(s.finding.rule.name())),
            ("path", JsonValue::str(&s.finding.path)),
            ("line", JsonValue::from(s.finding.line)),
            ("justification", JsonValue::str(&s.justification)),
        ])
    }));
    let pragmas = JsonValue::array(report.pragmas.iter().map(|p| {
        JsonValue::object([
            ("path", JsonValue::str(&p.path)),
            ("line", JsonValue::from(p.line)),
            ("rule", JsonValue::str(p.rule.name())),
            ("justification", JsonValue::str(&p.justification)),
            ("used", JsonValue::Bool(p.used)),
        ])
    }));
    // The dependency-audit surface: every resolved package with its
    // resolved dependency names, in lockfile order.
    let packages = JsonValue::array(report.packages.iter().map(|p| {
        JsonValue::object([
            ("name", JsonValue::str(&p.name)),
            ("version", JsonValue::str(&p.version)),
            (
                "source",
                match &p.source {
                    Some(s) => JsonValue::str(s.as_str()),
                    None => JsonValue::str("workspace"),
                },
            ),
            (
                "dependencies",
                JsonValue::array(p.dependencies.iter().map(|d| JsonValue::str(d.as_str()))),
            ),
        ])
    }));
    let doc = JsonValue::object([
        ("schema", JsonValue::str("tsn-lint/1")),
        ("clean", JsonValue::Bool(report.is_clean())),
        ("files_scanned", JsonValue::from(report.files_scanned)),
        (
            "rules",
            JsonValue::array(RuleId::ALL.into_iter().map(|r| JsonValue::str(r.name()))),
        ),
        ("findings", findings),
        ("suppressed", suppressed),
        ("pragmas", pragmas),
        (
            "workspace",
            JsonValue::object([
                (
                    "members",
                    JsonValue::array(report.members.iter().map(|m| JsonValue::str(m.as_str()))),
                ),
                ("resolved_packages", packages),
            ]),
        ),
    ]);
    let mut out = String::new();
    render_pretty(&doc, 0, &mut out);
    out.push('\n');
    out
}

/// Pretty-prints a [`JsonValue`] with two-space indentation — the
/// compact `Display` form is fine for piping, but the CI artifact is
/// meant to be diffed PR-over-PR, where one-entry-per-line matters.
fn render_pretty(value: &JsonValue, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        JsonValue::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                render_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        JsonValue::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in fields.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                out.push_str(&escape_str(key));
                out.push_str(": ");
                render_pretty(item, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        // Scalars and empty containers use the compact form.
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn empty_report() -> LintReport {
        LintReport {
            root: PathBuf::from("."),
            files_scanned: 3,
            findings: Vec::new(),
            suppressed: Vec::new(),
            pragmas: Vec::new(),
            members: vec!["tsn".to_string()],
            packages: Vec::new(),
        }
    }

    #[test]
    fn text_summary_mentions_counts() {
        let text = render_text(&empty_report());
        assert!(text.contains("3 files scanned"));
        assert!(text.contains("0 findings"));
    }

    #[test]
    fn json_is_schema_tagged_and_clean() {
        let json = render_json(&empty_report());
        assert!(json.contains("\"schema\": \"tsn-lint/1\""));
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"members\""));
    }
}
