//! Per-line suppression pragmas.
//!
//! Grammar (inside any comment):
//!
//! ```text
//! pragma        := "tsn-lint:" ws "allow" "(" rule-name "," ws string ")"
//! rule-name     := kebab-case identifier of a shipped rule
//! string        := '"' justification '"'        (must be non-empty)
//! ```
//!
//! A pragma suppresses findings of `rule` on the line it shares with
//! code; a pragma on a comment-only line suppresses the *next* line
//! that contains code. A pragma without a justification string, with an
//! empty justification, or naming an unknown rule is itself a violation
//! (`pragma-hygiene`) — suppressions must say *why* or they rot into
//! cargo-culted noise.

use crate::rules::RuleId;

/// A successfully parsed `allow` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// The rule being suppressed.
    pub rule: RuleId,
    /// The mandatory human-written justification.
    pub justification: String,
    /// 1-based line the pragma comment appears on.
    pub line: usize,
}

/// A malformed pragma (reported as a `pragma-hygiene` finding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaError {
    /// What is wrong with it.
    pub message: String,
    /// 1-based line the pragma comment appears on.
    pub line: usize,
}

/// Scans one line's comment text for pragmas.
///
/// Several pragmas may share a comment; each is parsed independently.
pub fn parse_line(comment: &str, line: usize) -> (Vec<Pragma>, Vec<PragmaError>) {
    const MARKER: &str = "tsn-lint:";
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(MARKER) {
        rest = &rest[pos + MARKER.len()..];
        // Only `allow(...)` after the marker is a pragma attempt;
        // prose that merely *mentions* `tsn-lint:` (docs, this file)
        // is not parsed, so it cannot self-flag.
        if !rest.trim_start().starts_with("allow") {
            continue;
        }
        match parse_one(rest) {
            Ok((pragma_rule, justification, consumed)) => {
                match justification {
                    Some(j) if !j.trim().is_empty() => match RuleId::from_name(&pragma_rule) {
                        Some(rule) => pragmas.push(Pragma {
                            rule,
                            justification: j,
                            line,
                        }),
                        None => errors.push(PragmaError {
                            message: format!(
                                "pragma names unknown rule `{pragma_rule}` (known rules: {})",
                                RuleId::names().join(", ")
                            ),
                            line,
                        }),
                    },
                    Some(_) => errors.push(PragmaError {
                        message: format!(
                            "pragma for `{pragma_rule}` has an empty justification — say why \
                             the pattern is benign"
                        ),
                        line,
                    }),
                    None => errors.push(PragmaError {
                        message: format!(
                            "pragma for `{pragma_rule}` is missing its justification string: \
                             write tsn-lint: allow({pragma_rule}, \"why this is sound\")"
                        ),
                        line,
                    }),
                }
                rest = &rest[consumed..];
            }
            Err(message) => {
                errors.push(PragmaError { message, line });
                break;
            }
        }
    }
    (pragmas, errors)
}

/// Parses one `allow(rule[, "justification"])` after the marker.
/// Returns `(rule_name, justification, chars_consumed)`.
fn parse_one(input: &str) -> Result<(String, Option<String>, usize), String> {
    let trimmed = input.trim_start();
    let body = trimmed.strip_prefix("allow").ok_or_else(|| {
        "malformed pragma: expected `allow(<rule>, \"<justification>\")` after `tsn-lint:`"
            .to_string()
    })?;
    let body = body.trim_start();
    let body = body
        .strip_prefix('(')
        .ok_or_else(|| "malformed pragma: expected `(` after `allow`".to_string())?;

    // Rule name: up to `,` or `)`.
    let end = body
        .find([',', ')'])
        .ok_or_else(|| "malformed pragma: unterminated `allow(` — missing `)`".to_string())?;
    let rule = body[..end].trim().to_string();
    if rule.is_empty() {
        return Err("malformed pragma: empty rule name in `allow()`".to_string());
    }
    let after_rule = &body[end..];
    if let Some(rest) = after_rule.strip_prefix(')') {
        let consumed = input.len() - rest.len();
        return Ok((rule, None, consumed));
    }
    // Comma path: expect a quoted justification.
    let rest = after_rule.trim_start_matches(',').trim_start();
    let rest = rest.strip_prefix('"').ok_or_else(|| {
        format!("malformed pragma: justification for `{rule}` must be a quoted string")
    })?;
    let close = rest
        .find('"')
        .ok_or_else(|| format!("malformed pragma: unterminated justification for `{rule}`"))?;
    let justification = rest[..close].to_string();
    let tail = rest[close + 1..].trim_start();
    let tail = tail
        .strip_prefix(')')
        .ok_or_else(|| format!("malformed pragma: missing `)` after justification for `{rule}`"))?;
    let consumed = input.len() - tail.len();
    Ok((rule, Some(justification), consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_pragma_parses() {
        let (p, e) = parse_line(" tsn-lint: allow(no-unwrap, \"checked above\")", 7);
        assert!(e.is_empty());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rule, RuleId::NoUnwrap);
        assert_eq!(p[0].justification, "checked above");
        assert_eq!(p[0].line, 7);
    }

    #[test]
    fn missing_justification_is_an_error() {
        let (p, e) = parse_line("tsn-lint: allow(no-unwrap)", 1);
        assert!(p.is_empty());
        assert_eq!(e.len(), 1);
        assert!(e[0].message.contains("missing its justification"));
    }

    #[test]
    fn empty_justification_is_an_error() {
        let (p, e) = parse_line("tsn-lint: allow(wall-clock, \"  \")", 1);
        assert!(p.is_empty());
        assert!(e[0].message.contains("empty justification"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let (p, e) = parse_line("tsn-lint: allow(no-such-rule, \"x\")", 1);
        assert!(p.is_empty());
        assert!(e[0].message.contains("unknown rule"));
        assert!(e[0].message.contains("no-unwrap"));
    }

    #[test]
    fn malformed_pragma_is_an_error() {
        let (p, e) = parse_line("tsn-lint: allow no-unwrap", 1);
        assert!(p.is_empty());
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let (p, e) = parse_line(" just a note about tsn internals", 1);
        assert!(p.is_empty());
        assert!(e.is_empty());
    }

    #[test]
    fn two_pragmas_on_one_line() {
        let (p, e) = parse_line(
            "tsn-lint: allow(no-unwrap, \"a\") tsn-lint: allow(wall-clock, \"b\")",
            3,
        );
        assert!(e.is_empty());
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].rule, RuleId::NoUnwrap);
        assert_eq!(p[1].rule, RuleId::WallClock);
    }
}
