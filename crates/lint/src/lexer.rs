//! A small Rust lexer that separates code from comments and blanks out
//! literal contents.
//!
//! The rule engine matches textual patterns (`.unwrap()`, `Instant::now`,
//! …) against *code*, so the lexer's job is to make sure a pattern inside
//! a string literal, a doc example or a comment can never fire, and that
//! a pragma inside a string literal is never honoured. It handles the
//! constructs that trip up naive line scanners:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes (`"a \" b"`), byte strings, and raw
//!   strings with arbitrary hash fences (`r##"…"##`, `br#"…"#`);
//! * char literals vs. lifetimes (`'a'` is a literal, `'a` in
//!   `&'a str` is not);
//! * raw identifiers (`r#match` is an identifier, not a raw string).
//!
//! Literal *contents* are replaced with spaces (quotes are kept), so
//! byte offsets within a line survive and `.expect("msg")` still
//! matches `.expect(` while `"call .unwrap() please"` matches nothing.

/// A source file split into parallel per-line code and comment channels.
///
/// Both vectors have one entry per physical source line. `code[i]` is
/// line `i + 1` with comments removed and literal contents blanked;
/// `comment[i]` is the concatenated comment text that appears on that
/// line (pragmas are parsed from this channel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexedFile {
    /// Per-line code with comments stripped and literals blanked.
    pub code: Vec<String>,
    /// Per-line comment text (without the `//` / `/*` markers).
    pub comment: Vec<String>,
}

impl LexedFile {
    /// Number of physical lines.
    pub fn line_count(&self) -> usize {
        self.code.len()
    }
}

enum State {
    /// Ordinary code.
    Normal,
    /// Inside `// …` until end of line.
    LineComment,
    /// Inside `/* … */`, tracking nesting depth.
    BlockComment(u32),
    /// Inside a `"…"` string (escape-aware).
    Str,
    /// Inside a raw string closed by `"` followed by this many `#`s.
    RawStr(u32),
    /// Inside a `'…'` char literal (escape-aware).
    CharLit,
}

/// Lexes `source` into per-line code and comment channels.
///
/// The lexer is intentionally forgiving: on input that is not valid
/// Rust (an unterminated string, say) it degrades to treating the rest
/// of the file as literal content rather than failing. The linter runs
/// on sources that `rustc` already accepted, so this path only matters
/// for fixtures.
pub fn lex(source: &str) -> LexedFile {
    let mut code: Vec<String> = Vec::new();
    let mut comment: Vec<String> = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();

    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut state = State::Normal;
    // The last code character, used for identifier-boundary checks when
    // deciding whether `r` / `b` starts a raw or byte string.
    let mut prev_code: Option<char> = None;

    let flush_line = |code: &mut Vec<String>,
                      comment: &mut Vec<String>,
                      code_line: &mut String,
                      comment_line: &mut String| {
        code.push(std::mem::take(code_line));
        comment.push(std::mem::take(comment_line));
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Normal;
            }
            flush_line(&mut code, &mut comment, &mut code_line, &mut comment_line);
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code_line.push('"');
                    prev_code = Some('"');
                    state = State::Str;
                    i += 1;
                } else if c == '\'' {
                    // Char literal or lifetime? `'\…'` and `'x'` are
                    // literals; everything else (`'a`, `'static`, `'_`)
                    // is a lifetime and stays in the code channel.
                    let is_escape = next == Some('\\');
                    let closes_after_one = chars.get(i + 2).copied() == Some('\'');
                    if is_escape || (next.is_some() && next != Some('\'') && closes_after_one) {
                        code_line.push('\'');
                        prev_code = Some('\'');
                        state = State::CharLit;
                        i += 1;
                    } else {
                        code_line.push(c);
                        prev_code = Some(c);
                        i += 1;
                    }
                } else if (c == 'r' || c == 'b') && !is_ident_char(prev_code) {
                    // Candidate raw/byte string prefix: one of
                    // r" r#" b" br" br#" rb… (invalid) — scan the
                    // prefix; fall back to plain code when it is a raw
                    // identifier (`r#match`) or ordinary ident.
                    if let Some((skip, hashes)) = raw_string_prefix(&chars[i..]) {
                        for k in 0..skip {
                            code_line.push(chars[i + k]);
                        }
                        state = if hashes == 0 {
                            State::Str
                        } else {
                            State::RawStr(hashes)
                        };
                        // A zero-hash prefix like `b"` is an ordinary
                        // (escape-aware) string; `r"` has no escapes
                        // but also no way to embed `"`, so Str works
                        // for it too… except `r"a\"` — in a raw string
                        // `\` is literal and the string ends at `"`.
                        if hashes == 0 && chars[i] == 'r' {
                            state = State::RawStr(0);
                        }
                        if hashes == 0 && chars[i] == 'b' && chars.get(i + 1) == Some(&'r') {
                            state = State::RawStr(0);
                        }
                        prev_code = Some('"');
                        i += skip;
                    } else {
                        code_line.push(c);
                        prev_code = Some(c);
                        i += 1;
                    }
                } else {
                    code_line.push(c);
                    prev_code = Some(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_line.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment_line.push_str("/*");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    if depth == 1 {
                        state = State::Normal;
                    } else {
                        state = State::BlockComment(depth - 1);
                        comment_line.push_str("*/");
                    }
                    i += 2;
                } else {
                    comment_line.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Escape: blank both characters.
                    code_line.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        code_line.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    code_line.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars[i + 1..], hashes) {
                    code_line.push('"');
                    for _ in 0..hashes {
                        code_line.push('#');
                    }
                    state = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    code_line.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        code_line.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    code_line.push('\'');
                    state = State::Normal;
                    i += 1;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
        }
    }
    flush_line(&mut code, &mut comment, &mut code_line, &mut comment_line);
    LexedFile { code, comment }
}

fn is_ident_char(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If `rest` starts a raw/byte string literal (`r"`, `r#"`, `b"`,
/// `br##"`, …), returns `(prefix_len_through_opening_quote, hashes)`.
/// Raw identifiers (`r#match`) and plain identifiers return `None`.
fn raw_string_prefix(rest: &[char]) -> Option<(usize, u32)> {
    let mut j = 0;
    if rest.first() == Some(&'b') {
        j += 1;
    }
    if rest.get(j) == Some(&'r') {
        j += 1;
    }
    if j == 0 {
        return None;
    }
    let mut hashes = 0u32;
    while rest.get(j + hashes as usize) == Some(&'#') {
        hashes += 1;
    }
    let j = j + hashes as usize;
    if rest.get(j) == Some(&'"') {
        // `b#"` is not a literal prefix (needs the `r`); reject hashes
        // without an `r`.
        if hashes > 0 && !rest[..j].contains(&'r') {
            return None;
        }
        Some((j + 1, hashes))
    } else {
        None
    }
}

/// Does `rest` (the characters *after* a `"`) close a raw string with
/// this many fence hashes?
fn closes_raw(rest: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| rest.get(k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).code
    }

    #[test]
    fn line_comment_goes_to_comment_channel() {
        let f = lex("let x = 1; // trailing note\n");
        assert_eq!(f.code[0], "let x = 1; ");
        assert_eq!(f.comment[0], " trailing note");
    }

    #[test]
    fn nested_block_comments() {
        let f = lex("a /* outer /* inner */ still comment */ b\n");
        assert_eq!(f.code[0], "a  b");
        assert!(f.comment[0].contains("inner"));
        assert!(f.comment[0].contains("still comment"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let f = lex("x /* one\ntwo */ y\n");
        assert_eq!(f.code[0], "x ");
        assert_eq!(f.code[1], " y");
        assert_eq!(f.comment[0], " one");
        assert_eq!(f.comment[1], "two ");
    }

    #[test]
    fn string_contents_are_blanked() {
        let f = lex(r#"let s = "call .unwrap() now";"#);
        assert!(!f.code[0].contains(".unwrap()"));
        assert!(f.code[0].starts_with("let s = \""));
        assert!(f.code[0].ends_with("\";"));
    }

    #[test]
    fn slashes_inside_string_are_not_comments() {
        let f = lex(r#"let url = "https://example.org"; let y = 2;"#);
        assert!(f.code[0].contains("let y = 2;"));
        assert_eq!(f.comment[0], "");
    }

    #[test]
    fn escaped_quote_stays_inside_string() {
        let f = lex(r#"let s = "a \" b .unwrap() c"; done();"#);
        assert!(!f.code[0].contains(".unwrap()"));
        assert!(f.code[0].contains("done();"));
    }

    #[test]
    fn raw_string_with_hashes() {
        let f = lex(r###"let s = r#"inner " quote .expect( here"#; after();"###);
        assert!(!f.code[0].contains(".expect("));
        assert!(f.code[0].contains("after();"));
    }

    #[test]
    fn raw_string_two_hashes_ignores_single_hash_close() {
        let src = "let s = r##\"has \"# inside\"##; tail();\n";
        let f = lex(src);
        assert!(!f.code[0].contains("inside"));
        assert!(f.code[0].contains("tail();"));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let f = lex(r##"let a = b"panic!("; let b = br#"panic!("#; end();"##);
        assert!(!f.code[0].contains("panic!"));
        assert!(f.code[0].contains("end();"));
    }

    #[test]
    fn raw_identifier_is_code_not_string() {
        let f = lex("let r#match = 1; let x = r#match;\n");
        assert!(f.code[0].contains("r#match"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let f = lex("fn f<'a>(x: &'a str) -> char { '\"' }\n");
        // The lifetime survives as code; the quote char literal is
        // blanked and does not open a string.
        assert!(f.code[0].contains("&'a str"));
        assert!(f.code[0].contains('{'));
        assert!(f.code[0].contains('}'));
        let g = lex("let c = 'x'; let d = '\\n'; rest();\n");
        assert!(g.code[0].contains("rest();"));
    }

    #[test]
    fn comment_markers_inside_strings_do_not_open_comments() {
        let f = lex("let s = \"/* not a comment */\"; live();\n");
        assert!(f.code[0].contains("live();"));
        assert_eq!(f.comment[0], "");
    }

    #[test]
    fn line_counts_match_input() {
        let src = "a\nb\nc";
        assert_eq!(code_of(src).len(), 3);
        let src_nl = "a\nb\nc\n";
        // A trailing newline yields one final empty line, like `wc -l`
        // plus the remainder.
        assert_eq!(code_of(src_nl).len(), 4);
    }

    #[test]
    fn unterminated_string_degrades_gracefully() {
        let f = lex("let s = \"never closed .unwrap()\nnext .unwrap()\n");
        assert!(!f.code[0].contains(".unwrap()"));
        // Inside the (unterminated) string, later lines stay blanked
        // rather than producing phantom findings.
        assert!(!f.code[1].contains(".unwrap()"));
    }
}
