//! # tsn-lint — determinism & soundness linter for the tsn workspace
//!
//! Every guarantee this reproduction makes — streaming == batch,
//! shard-count invariance, crash-recover-then-continue and replica
//! failover all bit-identical — rests on conventions that `rustc`
//! does not check: all randomness through seeded `SimRng` streams, no
//! iteration over hash collections, no wall-clock reads in replayed
//! code, no implied crash paths in library crates, no external
//! dependencies. This crate turns those conventions into
//! machine-enforceable rules (DESIGN.md §14): a small Rust lexer
//! ([`lexer`]) separates code from comments and literals, a rule set
//! ([`rules`]) matches violation patterns against the code channel,
//! and per-line justification pragmas ([`pragma`]) provide the audited
//! escape hatch.
//!
//! ## Running
//!
//! ```text
//! cargo run -p tsn-lint            # human-readable diagnostics
//! cargo run -p tsn-lint -- --json  # machine-readable report
//! ```
//!
//! The process exits `0` when the workspace is clean, `1` when any
//! finding is live, `2` on usage or I/O errors. `tests/lint.rs` keeps
//! the workspace clean in CI and self-tests every rule against planted
//! violations, so the rule set itself cannot silently rot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;

pub use engine::{lint_source, lint_workspace, LintReport, PragmaRecord, Suppressed};
pub use lexer::{lex, LexedFile};
pub use pragma::{parse_line, Pragma, PragmaError};
pub use report::{render_json, render_text};
pub use rules::{check_crate_root, check_lockfile, FileScope, Finding, LockPackage, RuleId};
