//! The rule set.
//!
//! Each rule guards one leg of the workspace's determinism/soundness
//! contract (DESIGN.md §14). Rules are deliberately *textual*: they run
//! on lexed code (comments stripped, literals blanked — see
//! [`crate::lexer`]), not on types, so they are heuristics with a
//! documented escape hatch (the justification pragma) rather than a
//! type system. That trade keeps the linter zero-dependency and fast
//! enough to run on every push.

use crate::lexer::LexedFile;

/// Identifies one shipped rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Iteration over `HashMap`/`HashSet` in library code — per-instance
    /// random order breaks bit-for-bit replay.
    HashIter,
    /// Wall-clock time sources (`Instant::now`, `SystemTime`,
    /// `thread::sleep`) — everything replayed runs on the sim clock.
    WallClock,
    /// Randomness that does not flow through `SimRng` — `thread_rng`,
    /// `rand::`, `RandomState`, `OsRng` reseed per process.
    ForeignRng,
    /// `unwrap()` / `expect()` / `panic!` in library code outside
    /// `#[cfg(test)]` — crash paths must be designed, not implied.
    NoUnwrap,
    /// Every crate root must carry `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// `Cargo.lock` must resolve to workspace members only (the
    /// zero-dependency invariant).
    WorkspacePurity,
    /// Malformed suppression pragmas (missing/empty justification,
    /// unknown rule name).
    PragmaHygiene,
}

impl RuleId {
    /// All rules, in reporting order.
    pub const ALL: [RuleId; 7] = [
        RuleId::HashIter,
        RuleId::WallClock,
        RuleId::ForeignRng,
        RuleId::NoUnwrap,
        RuleId::ForbidUnsafe,
        RuleId::WorkspacePurity,
        RuleId::PragmaHygiene,
    ];

    /// The kebab-case name used in diagnostics and pragmas.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashIter => "hash-iter",
            RuleId::WallClock => "wall-clock",
            RuleId::ForeignRng => "foreign-rng",
            RuleId::NoUnwrap => "no-unwrap",
            RuleId::ForbidUnsafe => "forbid-unsafe",
            RuleId::WorkspacePurity => "workspace-purity",
            RuleId::PragmaHygiene => "pragma-hygiene",
        }
    }

    /// Parses a rule name (as written in a pragma).
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }

    /// All rule names, for error messages.
    pub fn names() -> Vec<&'static str> {
        RuleId::ALL.into_iter().map(|r| r.name()).collect()
    }
}

/// Where a file sits in the workspace — rules scope by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileScope {
    /// A library crate source file (`crates/*/src/**`, the facade
    /// `src/lib.rs`). Full rule set.
    Library,
    /// Benchmark code (`crates/bench/**`). Exempt from `hash-iter` and
    /// `no-unwrap`; wall-clock sites there still need a justification
    /// pragma so the exemption stays visible and auditable.
    Bench,
    /// A binary target (`src/bin/**`, `crates/*/src/bin/**`,
    /// `crates/lint/src/main.rs`). Exempt from `hash-iter`/`no-unwrap`
    /// (a CLI may die loudly), still sim-clock/SimRng-only.
    Bin,
    /// Integration tests (`tests/**`). Exempt from `no-unwrap`.
    Test,
    /// Examples (`examples/**`). Exempt from `no-unwrap`.
    Example,
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-oriented explanation.
    pub message: String,
    /// The offending source line, trimmed (empty for file-level rules).
    pub snippet: String,
}

/// Runs every line-scoped rule over one lexed file.
///
/// `raw_lines` (original source, line-split) is used only for snippet
/// display; all matching happens on the lexed code channel.
pub fn run_file_rules(
    scope: FileScope,
    path: &str,
    lexed: &LexedFile,
    raw_lines: &[&str],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if scope == FileScope::Library {
        hash_iter(path, lexed, raw_lines, &mut findings);
        no_unwrap(path, lexed, raw_lines, &mut findings);
    }
    wall_clock(path, lexed, raw_lines, &mut findings);
    foreign_rng(path, lexed, raw_lines, &mut findings);
    findings.sort_by_key(|a| (a.line, a.rule));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    findings
}

fn snippet(raw_lines: &[&str], line: usize) -> String {
    raw_lines
        .get(line - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

/// Occurrences of `pat` in `line` at identifier boundaries (the char
/// before and after the match must not extend an identifier).
fn word_positions(line: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(rel) = line[from..].find(pat) {
        let start = from + rel;
        let end = start + pat.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let pat_ends_ident = pat.as_bytes().last().is_some_and(|&b| is_ident_byte(b));
        let after_ok = !pat_ends_ident || end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(start);
        }
        from = end;
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

// ---------------------------------------------------------------------
// Rule: wall-clock
// ---------------------------------------------------------------------

const WALL_CLOCK_PATTERNS: [&str; 3] = ["Instant::now", "SystemTime", "thread::sleep"];

fn wall_clock(path: &str, lexed: &LexedFile, raw: &[&str], out: &mut Vec<Finding>) {
    for (idx, code) in lexed.code.iter().enumerate() {
        for pat in WALL_CLOCK_PATTERNS {
            if !word_positions(code, pat).is_empty() {
                out.push(Finding {
                    rule: RuleId::WallClock,
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`{pat}` reads the wall clock — replayed code must use the sim \
                         clock (SimTime); justify timing-only uses with a pragma"
                    ),
                    snippet: snippet(raw, idx + 1),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: foreign-rng
// ---------------------------------------------------------------------

const FOREIGN_RNG_PATTERNS: [&str; 5] =
    ["thread_rng", "rand::", "RandomState", "OsRng", "getrandom"];

fn foreign_rng(path: &str, lexed: &LexedFile, raw: &[&str], out: &mut Vec<Finding>) {
    for (idx, code) in lexed.code.iter().enumerate() {
        for pat in FOREIGN_RNG_PATTERNS {
            if !word_positions(code, pat).is_empty() {
                out.push(Finding {
                    rule: RuleId::ForeignRng,
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`{pat}` is a non-deterministic randomness source — all draws \
                         must flow through seeded SimRng streams"
                    ),
                    snippet: snippet(raw, idx + 1),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-unwrap
// ---------------------------------------------------------------------

fn no_unwrap(path: &str, lexed: &LexedFile, raw: &[&str], out: &mut Vec<Finding>) {
    let in_test = cfg_test_mask(lexed);
    for (idx, code) in lexed.code.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        for (pat, what) in [
            (".unwrap()", "`.unwrap()`"),
            (".expect(", "`.expect()`"),
            ("panic!", "`panic!`"),
        ] {
            let hit = if pat == "panic!" {
                !word_positions(code, pat).is_empty()
            } else {
                code.contains(pat)
            };
            if hit {
                out.push(Finding {
                    rule: RuleId::NoUnwrap,
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "{what} in library code outside #[cfg(test)] — return an error, \
                         restructure so the invariant is by construction, or justify \
                         with a pragma"
                    ),
                    snippet: snippet(raw, idx + 1),
                });
            }
        }
    }
}

/// Per-line mask: is this line inside a `#[cfg(test)]`-gated item?
///
/// Brace-depth tracking on lexed code (string/char braces already
/// blanked). The region starts at the attribute line and ends when the
/// brace depth returns to its pre-attribute level.
fn cfg_test_mask(lexed: &LexedFile) -> Vec<bool> {
    #[derive(PartialEq)]
    enum Region {
        /// Not inside a gated item.
        Outside,
        /// Saw the attribute; waiting for the item's `{` or a
        /// brace-less item terminated by `;` (`#[cfg(test)] use …;`).
        Armed,
        /// Inside the item's braces; closes when depth returns to the
        /// recorded floor.
        Open(i64),
    }
    let mut mask = vec![false; lexed.code.len()];
    let mut depth: i64 = 0;
    let mut region = Region::Outside;
    for (idx, code) in lexed.code.iter().enumerate() {
        if region == Region::Outside && code.contains("cfg(test)") {
            region = Region::Armed;
        }
        if region != Region::Outside {
            mask[idx] = true;
        }
        let depth_before = depth;
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        region = match region {
            Region::Outside => Region::Outside,
            Region::Armed => {
                if code.contains('{') {
                    if depth <= depth_before && code.contains('}') {
                        Region::Outside // one-liner: `#[cfg(test)] mod t { … }`
                    } else {
                        Region::Open(depth_before)
                    }
                } else if code.trim_end().ends_with(';') {
                    Region::Outside // brace-less gated item
                } else {
                    Region::Armed
                }
            }
            Region::Open(floor) => {
                if depth <= floor && code.contains('}') {
                    Region::Outside
                } else {
                    Region::Open(floor)
                }
            }
        };
    }
    mask
}

// ---------------------------------------------------------------------
// Rule: hash-iter
// ---------------------------------------------------------------------

const HASH_ITER_METHODS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

fn hash_iter(path: &str, lexed: &LexedFile, raw: &[&str], out: &mut Vec<Finding>) {
    let idents = collect_hash_idents(lexed);
    for (idx, code) in lexed.code.iter().enumerate() {
        let mut flag = |message: String| {
            out.push(Finding {
                rule: RuleId::HashIter,
                path: path.to_string(),
                line: idx + 1,
                message,
                snippet: snippet(raw, idx + 1),
            });
        };
        // Method calls on a known hash-typed binding, or directly on a
        // HashMap/HashSet expression on the same line.
        for method in HASH_ITER_METHODS {
            let mut from = 0;
            while let Some(rel) = code[from..].find(method) {
                let at = from + rel;
                let receiver = ident_before(code, at);
                let direct = code[..at].contains("HashMap") || code[..at].contains("HashSet");
                if direct || idents.iter().any(|i| i == receiver) {
                    flag(format!(
                        "`{}{method}` iterates a hash collection — per-instance random \
                         order breaks bit-for-bit replay; use a sorted/indexed structure \
                         (LocalMatrix idiom) or collect-and-sort first",
                        receiver
                    ));
                }
                from = at + method.len();
            }
        }
        // `for … in <hash binding>` (with optional &/&mut and trailing
        // method chain already handled above).
        if let Some(pos) = word_positions(code, "for").first().copied() {
            if let Some(in_rel) = code[pos..].find(" in ") {
                let expr = code[pos + in_rel + 4..].trim_start();
                let expr = expr.trim_start_matches('&').trim_start_matches("mut ");
                let head: String = expr
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
                    .collect();
                let last = head.rsplit('.').next().unwrap_or_default();
                if idents.iter().any(|i| i == last) {
                    flag(format!(
                        "`for … in {last}` iterates a hash collection — per-instance \
                         random order breaks bit-for-bit replay"
                    ));
                }
            }
        }
    }
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file:
/// type-annotated bindings/fields/params (`name: HashMap<…>`) and
/// constructor bindings (`name = HashMap::new()` /
/// `with_capacity(…)`). File-local and purely textual — a heuristic,
/// not type inference.
fn collect_hash_idents(lexed: &LexedFile) -> Vec<String> {
    let mut idents = Vec::new();
    for code in &lexed.code {
        for ty in ["HashMap", "HashSet"] {
            for at in word_positions(code, ty) {
                // Reference types annotate bindings too: peel `&`/`&mut`
                // so `votes: &HashMap<…>` still captures `votes`.
                let mut before = code[..at].trim_end();
                if let Some(b) = before.strip_suffix("mut") {
                    before = b.trim_end();
                }
                before = before.trim_end_matches('&').trim_end();
                let name = if let Some(b) = before.strip_suffix(':') {
                    // `name: HashMap<…>` — annotation on a binding,
                    // field or parameter. (`::` path segments like
                    // `collections::HashMap` must not capture the
                    // module name.)
                    if b.ends_with(':') {
                        continue;
                    }
                    ident_at_end(b)
                } else if let Some(b) = before.strip_suffix('=') {
                    // `name = HashMap::new()` — strip a possible
                    // type annotation between name and `=`.
                    let b = b.trim_end();
                    match b.rfind(':') {
                        Some(c) if !b.ends_with("::") => ident_at_end(b[..c].trim_end_matches(':')),
                        _ => ident_at_end(b),
                    }
                } else {
                    continue;
                };
                if !name.is_empty() && !idents.iter().any(|i| i == &name) {
                    idents.push(name);
                }
            }
        }
    }
    idents
}

/// The identifier ending at byte position `at` (exclusive), e.g. the
/// method-call receiver just before a `.`.
fn ident_before(code: &str, at: usize) -> &str {
    let bytes = code.as_bytes();
    let mut start = at;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    &code[start..at]
}

/// The identifier at the end of `s` (after trimming), if any.
fn ident_at_end(s: &str) -> String {
    let s = s.trim_end().trim_end_matches("mut ").trim_end();
    let s = s.trim_end();
    ident_before(s, s.len()).to_string()
}

// ---------------------------------------------------------------------
// Rule: forbid-unsafe (crate roots)
// ---------------------------------------------------------------------

/// Checks a crate root for `#![forbid(unsafe_code)]`.
pub fn check_crate_root(path: &str, lexed: &LexedFile) -> Option<Finding> {
    let present = lexed
        .code
        .iter()
        .any(|l| l.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    if present {
        None
    } else {
        Some(Finding {
            rule: RuleId::ForbidUnsafe,
            path: path.to_string(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]` — every workspace \
                      crate forbids unsafe at the root"
                .to_string(),
            snippet: String::new(),
        })
    }
}

// ---------------------------------------------------------------------
// Rule: workspace-purity (Cargo.lock)
// ---------------------------------------------------------------------

/// One resolved package from `Cargo.lock` (also emitted into the JSON
/// report so dependency audits can diff it PR-over-PR).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockPackage {
    /// Package name.
    pub name: String,
    /// Resolved version.
    pub version: String,
    /// Registry/git source, if any — workspace members have none.
    pub source: Option<String>,
    /// Names of its resolved dependencies.
    pub dependencies: Vec<String>,
    /// 1-based line of the `[[package]]` stanza in `Cargo.lock`.
    pub line: usize,
}

/// Parses `Cargo.lock` and checks the zero-dependency invariant: every
/// resolved package must be a workspace member (no `source`, name in
/// `members`). Returns findings plus the full resolved package list.
pub fn check_lockfile(lock_text: &str, members: &[String]) -> (Vec<Finding>, Vec<LockPackage>) {
    let packages = parse_lockfile(lock_text);
    let mut findings = Vec::new();
    for p in &packages {
        if let Some(source) = &p.source {
            findings.push(Finding {
                rule: RuleId::WorkspacePurity,
                path: "Cargo.lock".to_string(),
                line: p.line,
                message: format!(
                    "package `{} {}` resolves from an external source (`{source}`) — the \
                     workspace is zero-dependency by construction; vendor the primitive \
                     instead",
                    p.name, p.version
                ),
                snippet: format!("[[package]] {} {}", p.name, p.version),
            });
        } else if !members.iter().any(|m| m == &p.name) {
            findings.push(Finding {
                rule: RuleId::WorkspacePurity,
                path: "Cargo.lock".to_string(),
                line: p.line,
                message: format!(
                    "package `{} {}` is not a workspace member — stale or foreign lock \
                     entry",
                    p.name, p.version
                ),
                snippet: format!("[[package]] {} {}", p.name, p.version),
            });
        }
    }
    (findings, packages)
}

/// Minimal parser for the subset of TOML that `Cargo.lock` uses.
fn parse_lockfile(text: &str) -> Vec<LockPackage> {
    let mut packages = Vec::new();
    let mut current: Option<LockPackage> = None;
    let mut in_deps = false;
    for (idx, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line == "[[package]]" {
            if let Some(p) = current.take() {
                packages.push(p);
            }
            current = Some(LockPackage {
                name: String::new(),
                version: String::new(),
                source: None,
                dependencies: Vec::new(),
                line: idx + 1,
            });
            in_deps = false;
            continue;
        }
        let Some(p) = current.as_mut() else { continue };
        if in_deps {
            if line.starts_with(']') {
                in_deps = false;
            } else {
                let dep = line.trim_matches(|c: char| c == '"' || c == ',' || c.is_whitespace());
                // A dependency entry may carry a version ("name version");
                // the leading word is the name.
                if let Some(name) = dep.split_whitespace().next() {
                    p.dependencies.push(name.to_string());
                }
            }
            continue;
        }
        if let Some(v) = toml_str_value(line, "name") {
            p.name = v;
        } else if let Some(v) = toml_str_value(line, "version") {
            p.version = v;
        } else if let Some(v) = toml_str_value(line, "source") {
            p.source = Some(v);
        } else if line.starts_with("dependencies = [") {
            in_deps = !line.ends_with(']');
            if !in_deps {
                // Single-line form: dependencies = ["a", "b"].
                let inner = line
                    .trim_start_matches("dependencies = [")
                    .trim_end_matches(']');
                for dep in inner.split(',') {
                    let dep = dep.trim().trim_matches('"');
                    if let Some(name) = dep.split_whitespace().next() {
                        p.dependencies.push(name.to_string());
                    }
                }
            }
        }
    }
    if let Some(p) = current.take() {
        packages.push(p);
    }
    packages
}

/// Extracts `value` from a `key = "value"` TOML line.
pub(crate) fn toml_str_value(line: &str, key: &str) -> Option<String> {
    let rest = line.strip_prefix(key)?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    rest.find('"').map(|end| rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint(scope: FileScope, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let raw: Vec<&str> = src.lines().collect();
        run_file_rules(scope, "fixture.rs", &lexed, &raw)
    }

    #[test]
    fn cfg_test_region_is_masked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() { z.unwrap(); }\n";
        let hits: Vec<usize> = lint(FileScope::Library, src)
            .into_iter()
            .filter(|f| f.rule == RuleId::NoUnwrap)
            .map(|f| f.line)
            .collect();
        assert_eq!(hits, vec![1, 6]);
    }

    #[test]
    fn hash_idents_from_annotation_and_ctor() {
        let lexed = lex("struct S { cache: HashMap<u32, f64> }\nlet mut seen = HashSet::new();\n");
        let idents = collect_hash_idents(&lexed);
        assert!(idents.iter().any(|i| i == "cache"));
        assert!(idents.iter().any(|i| i == "seen"));
    }

    #[test]
    fn hash_iter_fires_on_member_and_for_loop() {
        let src = "struct S { cache: HashMap<u32, f64> }\nfn f(s: &S) {\n    for v in s.cache.values() { use_it(v); }\n}\n";
        let f = lint(FileScope::Library, src);
        assert!(f.iter().any(|f| f.rule == RuleId::HashIter && f.line == 3));
    }

    #[test]
    fn hash_iter_ignores_lookups() {
        let src = "struct S { cache: HashMap<u32, f64> }\nfn f(s: &S) -> bool { s.cache.contains_key(&1) }\n";
        let f = lint(FileScope::Library, src);
        assert!(f.iter().all(|f| f.rule != RuleId::HashIter));
    }

    #[test]
    fn lockfile_external_source_flagged() {
        let lock = "[[package]]\nname = \"serde\"\nversion = \"1.0.0\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n";
        let (f, pkgs) = check_lockfile(lock, &["tsn".to_string()]);
        assert_eq!(pkgs.len(), 1);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("external source"));
    }

    #[test]
    fn lockfile_member_clean() {
        let lock = "[[package]]\nname = \"tsn\"\nversion = \"0.1.0\"\ndependencies = [\n \"tsn-core\",\n]\n";
        let (f, pkgs) = check_lockfile(lock, &["tsn".to_string()]);
        assert!(f.is_empty());
        assert_eq!(pkgs[0].dependencies, vec!["tsn-core".to_string()]);
    }
}
