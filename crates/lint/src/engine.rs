//! Workspace discovery and rule orchestration.
//!
//! The engine walks the workspace's own sources (member `src/` and
//! `benches/` trees, the facade `src/`, root `tests/` and `examples/`),
//! lexes each file, applies the line rules under the file's scope,
//! honours justification pragmas, and layers on the two workspace-level
//! rules (crate-root `forbid-unsafe`, `Cargo.lock` purity). Everything
//! is deterministic: files are visited in sorted order and findings are
//! reported in `(path, line, rule)` order.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, LexedFile};
use crate::pragma::{parse_line, Pragma};
use crate::rules::{
    check_crate_root, check_lockfile, run_file_rules, toml_str_value, FileScope, Finding,
    LockPackage, RuleId,
};

/// A pragma together with its resolved target line and usage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaRecord {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line the pragma comment appears on.
    pub line: usize,
    /// The rule it suppresses.
    pub rule: RuleId,
    /// The written justification.
    pub justification: String,
    /// Whether it actually suppressed a finding this run.
    pub used: bool,
}

/// A finding that was suppressed by a justified pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// The suppressed finding.
    pub finding: Finding,
    /// The pragma's justification.
    pub justification: String,
}

/// The result of linting a workspace.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Workspace root the scan ran against.
    pub root: PathBuf,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Live violations (pragma-suppressed ones excluded).
    pub findings: Vec<Finding>,
    /// Findings suppressed by justified pragmas.
    pub suppressed: Vec<Suppressed>,
    /// Every justified pragma seen, with usage.
    pub pragmas: Vec<PragmaRecord>,
    /// Workspace member package names (from the member manifests).
    pub members: Vec<String>,
    /// The resolved `Cargo.lock` package list (the dependency audit
    /// surface — diffable PR-over-PR from the JSON report).
    pub packages: Vec<LockPackage>,
}

impl LintReport {
    /// True when the workspace is clean: no findings (a stale or
    /// malformed pragma is itself a `pragma-hygiene` finding).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml` and `Cargo.lock`).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let manifest = read_named(&root.join("Cargo.toml"))?;
    let member_dirs = parse_members(&manifest);
    let mut members = Vec::new();
    // The facade package lives at the root itself.
    if let Some(name) = package_name(&manifest) {
        members.push(name);
    }
    for dir in &member_dirs {
        let m = read_named(&root.join(dir).join("Cargo.toml"))?;
        if let Some(name) = package_name(&m) {
            members.push(name);
        }
    }
    members.sort();

    // ---- file inventory ------------------------------------------------
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in member_dirs.iter().map(|d| d.as_str()).chain(["."]) {
        for sub in ["src", "benches"] {
            let base = root.join(dir).join(sub);
            if base.is_dir() {
                collect_rs_files(&base, &mut files)?;
            }
        }
    }
    for sub in ["tests", "examples"] {
        let base = root.join(sub);
        if base.is_dir() {
            collect_rs_files(&base, &mut files)?;
        }
    }
    files.sort();
    files.dedup();

    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed: Vec<Suppressed> = Vec::new();
    let mut pragma_records: Vec<PragmaRecord> = Vec::new();

    for file in &files {
        let source = read_named(file)?;
        let rel = relative_to(file, root);
        let scope = classify(&rel);
        let lexed = lex(&source);
        let raw_lines: Vec<&str> = source.lines().collect();

        let mut file_findings = run_file_rules(scope, &rel, &lexed, &raw_lines);
        if is_crate_root(&rel) {
            if let Some(f) = check_crate_root(&rel, &lexed) {
                file_findings.push(f);
            }
        }
        let (mut sup, mut recs) = pragma_pass(&rel, &lexed, &raw_lines, &mut file_findings);
        suppressed.append(&mut sup);
        pragma_records.append(&mut recs);
        findings.append(&mut file_findings);
    }

    // ---- workspace-level: Cargo.lock purity ----------------------------
    let lock_text = read_named(&root.join("Cargo.lock"))?;
    let (lock_findings, packages) = check_lockfile(&lock_text, &members);
    findings.extend(lock_findings);

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    suppressed.sort_by(|a, b| {
        (&a.finding.path, a.finding.line, a.finding.rule).cmp(&(
            &b.finding.path,
            b.finding.line,
            b.finding.rule,
        ))
    });

    Ok(LintReport {
        root: root.to_path_buf(),
        files_scanned: files.len(),
        findings,
        suppressed,
        pragmas: pragma_records,
        members,
        packages,
    })
}

/// `fs::read_to_string` with the failing path in the error message —
/// "No such file or directory" alone is useless in CI logs.
fn read_named(path: &Path) -> io::Result<String> {
    fs::read_to_string(path)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))
}

/// Lints a single source snippet under a given scope — the fixture
/// entry point used by the self-tests (`tests/lint.rs`) to prove each
/// rule fires on a planted violation. Pragma semantics are identical
/// to the workspace walk.
pub fn lint_source(scope: FileScope, name: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut findings = run_file_rules(scope, name, &lexed, &raw_lines);
    pragma_pass(name, &lexed, &raw_lines, &mut findings);
    findings.sort_by_key(|a| (a.line, a.rule));
    findings
}

/// The shared pragma pass: parses pragmas out of the comment channel,
/// reports malformed ones, suppresses matching findings, and flags
/// stale pragmas. `findings` is filtered in place; the suppressed
/// findings and the full pragma inventory are returned.
fn pragma_pass(
    path: &str,
    lexed: &LexedFile,
    raw_lines: &[&str],
    findings: &mut Vec<Finding>,
) -> (Vec<Suppressed>, Vec<PragmaRecord>) {
    let snippet_at = |line: usize| -> String {
        raw_lines
            .get(line - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let mut pragmas: Vec<(Pragma, Option<usize>, bool)> = Vec::new();
    for (idx, comment) in lexed.comment.iter().enumerate() {
        if comment.is_empty() {
            continue;
        }
        let (parsed, errors) = parse_line(comment, idx + 1);
        for e in errors {
            findings.push(Finding {
                rule: RuleId::PragmaHygiene,
                path: path.to_string(),
                line: e.line,
                message: e.message,
                snippet: snippet_at(e.line),
            });
        }
        for p in parsed {
            let target = pragma_target(lexed, idx);
            pragmas.push((p, target, false));
        }
    }

    let mut suppressed = Vec::new();
    findings.retain(|f| {
        if f.rule == RuleId::PragmaHygiene {
            return true;
        }
        let suppressor = pragmas
            .iter_mut()
            .find(|(p, target, _)| p.rule == f.rule && *target == Some(f.line));
        match suppressor {
            Some((p, _, used)) => {
                *used = true;
                suppressed.push(Suppressed {
                    finding: f.clone(),
                    justification: p.justification.clone(),
                });
                false
            }
            None => true,
        }
    });

    // A pragma that suppressed nothing is stale — the pattern it
    // excused is gone, so the excuse must go too.
    let mut records = Vec::new();
    for (p, _, used) in &pragmas {
        if !used {
            findings.push(Finding {
                rule: RuleId::PragmaHygiene,
                path: path.to_string(),
                line: p.line,
                message: format!(
                    "stale pragma: allow({}) suppresses nothing on its target line — \
                     remove it",
                    p.rule.name()
                ),
                snippet: snippet_at(p.line),
            });
        }
        records.push(PragmaRecord {
            path: path.to_string(),
            line: p.line,
            rule: p.rule,
            justification: p.justification.clone(),
            used: *used,
        });
    }
    (suppressed, records)
}

/// Resolves which line a pragma on line `idx + 1` suppresses: its own
/// line when it shares it with code, else the next line that has code.
fn pragma_target(lexed: &LexedFile, idx: usize) -> Option<usize> {
    if !lexed.code[idx].trim().is_empty() {
        return Some(idx + 1);
    }
    lexed
        .code
        .iter()
        .enumerate()
        .skip(idx + 1)
        .find(|(_, c)| !c.trim().is_empty())
        .map(|(i, _)| i + 1)
}

/// Recursively collects `.rs` files, sorted for determinism.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
fn relative_to(file: &Path, root: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scope classification by workspace-relative path (see [`FileScope`]).
pub fn classify(rel: &str) -> FileScope {
    if rel.starts_with("crates/bench/") {
        FileScope::Bench
    } else if rel.starts_with("tests/") {
        FileScope::Test
    } else if rel.starts_with("examples/") {
        FileScope::Example
    } else if rel.contains("/src/bin/")
        || rel.starts_with("src/bin/")
        || rel.ends_with("/src/main.rs")
    {
        FileScope::Bin
    } else {
        FileScope::Library
    }
}

/// Is this file a crate root (`src/lib.rs` of a member or the facade)?
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

/// Parses the `members = [ … ]` list out of the workspace manifest.
fn parse_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") && line.contains('[') {
            in_members = !line.contains(']');
            if !in_members {
                collect_quoted(line, &mut members);
            }
            continue;
        }
        if in_members {
            if line.starts_with(']') {
                in_members = false;
            } else {
                collect_quoted(line, &mut members);
            }
        }
    }
    members
}

/// Pulls every `"quoted"` string out of a line.
fn collect_quoted(line: &str, out: &mut Vec<String>) {
    let mut rest = line;
    while let Some(open) = rest.find('"') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('"') else { break };
        out.push(tail[..close].to_string());
        rest = &tail[close + 1..];
    }
}

/// The `name = "…"` under `[package]` in a manifest.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(name) = toml_str_value(line, "name") {
                return Some(name);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes() {
        assert_eq!(classify("crates/core/src/scenario.rs"), FileScope::Library);
        assert_eq!(classify("crates/bench/src/harness.rs"), FileScope::Bench);
        assert_eq!(
            classify("crates/bench/benches/service.rs"),
            FileScope::Bench
        );
        assert_eq!(classify("src/lib.rs"), FileScope::Library);
        assert_eq!(classify("src/bin/tsn-cli.rs"), FileScope::Bin);
        assert_eq!(classify("crates/lint/src/main.rs"), FileScope::Bin);
        assert_eq!(classify("tests/lint.rs"), FileScope::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileScope::Example);
    }

    #[test]
    fn trailing_pragma_suppresses_its_own_line() {
        let src = "fn f() {\n    x.unwrap(); // tsn-lint: allow(no-unwrap, \"checked\")\n}\n";
        let f = lint_source(FileScope::Library, "fx.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn standalone_pragma_suppresses_next_code_line() {
        let src = "fn f() {\n    // tsn-lint: allow(no-unwrap, \"checked\")\n    x.unwrap();\n}\n";
        let f = lint_source(FileScope::Library, "fx.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stale_pragma_is_flagged() {
        let src =
            "fn f() {\n    // tsn-lint: allow(no-unwrap, \"nothing here\")\n    let x = 1;\n}\n";
        let f = lint_source(FileScope::Library, "fx.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::PragmaHygiene);
        assert!(f[0].message.contains("stale pragma"));
    }

    #[test]
    fn pragma_for_wrong_rule_does_not_suppress() {
        let src = "fn f() {\n    x.unwrap(); // tsn-lint: allow(wall-clock, \"wrong rule\")\n}\n";
        let f = lint_source(FileScope::Library, "fx.rs", src);
        // The unwrap stays live and the pragma is stale: two findings.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|f| f.rule == RuleId::NoUnwrap));
        assert!(f.iter().any(|f| f.rule == RuleId::PragmaHygiene));
    }

    #[test]
    fn parse_members_and_package_name() {
        let manifest = "[workspace]\nmembers = [\n    \"crates/a\",\n    \"crates/b\",\n]\n\n[package]\nname = \"root\"\n";
        assert_eq!(parse_members(manifest), vec!["crates/a", "crates/b"]);
        assert_eq!(package_name(manifest), Some("root".to_string()));
    }
}
