//! The event queue at the heart of the discrete-event simulator.
//!
//! Events are closures scheduled at a [`SimTime`]. The queue pops them in
//! chronological order; ties are broken by insertion order ([`EventId`]),
//! which makes execution fully deterministic.

use crate::sim::Simulation;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Monotonically increasing identifier assigned at scheduling time.
///
/// Besides identifying events (e.g. for cancellation), it serves as the
/// deterministic tie-breaker between events scheduled for the same instant:
/// earlier-scheduled events run first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

/// The action executed when an event fires.
///
/// Boxed `FnOnce` rather than a trait object with named impls: experiments
/// schedule thousands of heterogeneous one-shot actions and closures capture
/// their context directly.
pub type Event = Box<dyn FnOnce(&mut Simulation)>;

/// An event together with its firing time and identity.
pub struct ScheduledEvent {
    /// When the event fires.
    pub at: SimTime,
    /// Scheduling identity (also the tie-breaker).
    pub id: EventId,
    /// The action to run.
    pub action: Event,
}

impl std::fmt::Debug for ScheduledEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduledEvent")
            .field("at", &self.at)
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

/// Min-heap wrapper: earliest time first, then lowest id.
struct HeapEntry(ScheduledEvent);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.id == other.0.id
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the earliest event on top.
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

/// A deterministic priority queue of [`ScheduledEvent`]s.
///
/// ```
/// use tsn_simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), Box::new(|_| {}));
/// q.schedule(SimTime::from_millis(1), Box::new(|_| {}));
/// assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
/// ```
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    next_id: u64,
    cancelled: std::collections::HashSet<EventId>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `action` to fire at `at`. Returns the event's id, usable
    /// with [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, action: Event) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(HeapEntry(ScheduledEvent { at, id, action }));
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancellation is lazy: the entry is dropped when it reaches the top of
    /// the heap. Returns `true` if the id had been issued by this queue and
    /// was not already cancelled (firing state is not tracked; cancelling an
    /// already-fired event is a no-op at pop time).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 < self.next_id {
            self.cancelled.insert(id)
        } else {
            false
        }
    }

    /// Time of the next (non-cancelled) event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.0.at)
    }

    /// Pops the next event in chronological order.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.skip_cancelled();
        self.heap.pop().map(|e| e.0)
    }

    /// Number of pending (possibly cancelled-but-unpopped) events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.0.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl std::fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_id", &self.next_id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> Event {
        Box::new(|_| {})
    }

    #[test]
    fn pops_in_chronological_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), noop());
        q.schedule(SimTime::from_millis(10), noop());
        q.schedule(SimTime::from_millis(20), noop());
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.at.as_millis())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        let a = q.schedule(t, noop());
        let b = q.schedule(t, noop());
        let c = q.schedule(t, noop());
        let ids: Vec<EventId> = std::iter::from_fn(|| q.pop().map(|e| e.id)).collect();
        assert_eq!(ids, vec![a, b, c]);
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(1), noop());
        q.schedule(SimTime::from_millis(2), noop());
        assert!(q.cancel(id));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.pop().unwrap().at, SimTime::from_millis(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_returns_false() {
        let mut q = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(1), noop());
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, noop());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), noop());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert!(q.pop().is_some());
    }
}
