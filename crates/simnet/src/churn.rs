//! Node churn: joins, leaves, crashes and whitewashing.
//!
//! The reputation literature the paper builds on (Marti & Garcia-Molina's
//! taxonomy, EigenTrust's threat models) treats churn and *whitewashing* —
//! re-joining under a fresh identity to shed a bad reputation — as
//! first-class adversarial behaviours. [`ChurnProcess`] generates the
//! lifecycle schedule; [`NodeLifecycle`] tracks the identity mapping so
//! higher layers can ask "is this node a whitewashed reincarnation?".

use crate::rng::SimRng;
use crate::time::SimDuration;
use crate::NodeId;
use std::collections::BTreeMap;

/// Parameters of the churn process.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Mean session length (time a node stays online). Exponentially
    /// distributed, the standard M/M churn assumption.
    pub mean_session: SimDuration,
    /// Mean offline time before re-joining.
    pub mean_downtime: SimDuration,
    /// Probability that a re-join is a *whitewash*: the node returns under
    /// a brand-new identity, discarding its history.
    pub whitewash_probability: f64,
    /// Fraction of departures that are crashes (no goodbye protocol);
    /// the rest are graceful leaves. Only affects what higher layers see.
    pub crash_fraction: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            mean_session: SimDuration::from_secs(3_600),
            mean_downtime: SimDuration::from_secs(600),
            whitewash_probability: 0.0,
            crash_fraction: 0.2,
        }
    }
}

impl ChurnConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.mean_session == SimDuration::ZERO {
            return Err("mean_session must be positive".into());
        }
        if self.mean_downtime == SimDuration::ZERO {
            return Err("mean_downtime must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.whitewash_probability) {
            return Err("whitewash_probability must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.crash_fraction) {
            return Err("crash_fraction must be in [0,1]".into());
        }
        Ok(())
    }
}

/// A lifecycle transition produced by the churn process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Node goes offline gracefully.
    Leave(NodeId),
    /// Node goes offline abruptly.
    Crash(NodeId),
    /// Node comes back online under the same identity.
    Rejoin(NodeId),
    /// Node comes back online under a fresh identity: `(old, new)`.
    Whitewash(NodeId, NodeId),
}

impl ChurnEvent {
    /// The identity that is online after this event, if any.
    pub fn online_identity(&self) -> Option<NodeId> {
        match *self {
            ChurnEvent::Leave(_) | ChurnEvent::Crash(_) => None,
            ChurnEvent::Rejoin(n) => Some(n),
            ChurnEvent::Whitewash(_, n) => Some(n),
        }
    }
}

/// Tracks which identities exist and the whitewash genealogy.
#[derive(Debug, Clone, Default)]
pub struct NodeLifecycle {
    /// For each whitewashed identity, the identity it replaced.
    predecessor: BTreeMap<NodeId, NodeId>,
    online: BTreeMap<NodeId, bool>,
}

impl NodeLifecycle {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fresh identity (initially online).
    pub fn register(&mut self, node: NodeId) {
        self.online.insert(node, true);
    }

    /// Applies a churn event to the tracker.
    pub fn apply(&mut self, event: ChurnEvent) {
        match event {
            ChurnEvent::Leave(n) | ChurnEvent::Crash(n) => {
                self.online.insert(n, false);
            }
            ChurnEvent::Rejoin(n) => {
                self.online.insert(n, true);
            }
            ChurnEvent::Whitewash(old, new) => {
                self.online.insert(old, false);
                self.online.insert(new, true);
                self.predecessor.insert(new, old);
            }
        }
    }

    /// Whether the identity is currently online.
    pub fn is_online(&self, node: NodeId) -> bool {
        self.online.get(&node).copied().unwrap_or(false)
    }

    /// The identity this node whitewashed from, if any.
    pub fn whitewashed_from(&self, node: NodeId) -> Option<NodeId> {
        self.predecessor.get(&node).copied()
    }

    /// Follows the whitewash chain back to the original identity.
    pub fn root_identity(&self, node: NodeId) -> NodeId {
        let mut cur = node;
        while let Some(&prev) = self.predecessor.get(&cur) {
            cur = prev;
        }
        cur
    }

    /// Number of identities ever registered.
    pub fn identity_count(&self) -> usize {
        self.online.len()
    }

    /// Number of identities currently online.
    pub fn online_count(&self) -> usize {
        self.online.values().filter(|&&o| o).count()
    }
}

/// Generates the churn schedule for one node population.
///
/// Usage: call [`ChurnProcess::next_transition`] for a node to obtain the
/// (delay, event) of its next lifecycle change; the caller schedules it on
/// the simulator clock. Fresh whitewash identities are allocated through
/// the callback so the caller controls id assignment.
#[derive(Debug)]
pub struct ChurnProcess {
    config: ChurnConfig,
    rng: SimRng,
}

impl ChurnProcess {
    /// Creates the process.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; validate first with
    /// [`ChurnConfig::validate`] to handle errors gracefully.
    pub fn new(config: ChurnConfig, rng: SimRng) -> Self {
        if let Err(e) = config.validate() {
            // tsn-lint: allow(no-unwrap, "documented contract: new() panics on a config that validate() rejects; fallible callers validate first")
            panic!("invalid churn config: {e}");
        }
        ChurnProcess { config, rng }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// Samples how long an online node stays up before departing, and
    /// whether the departure is a crash or a graceful leave.
    pub fn next_departure(&mut self, node: NodeId) -> (SimDuration, ChurnEvent) {
        let session = self.sample_exp(self.config.mean_session);
        let event = if self.rng.gen_bool(self.config.crash_fraction) {
            ChurnEvent::Crash(node)
        } else {
            ChurnEvent::Leave(node)
        };
        (session, event)
    }

    /// Samples how long an offline node stays down and how it returns.
    ///
    /// `alloc_identity` is invoked only when the return is a whitewash, and
    /// must hand out a fresh, never-used identity.
    pub fn next_return(
        &mut self,
        node: NodeId,
        alloc_identity: impl FnOnce() -> NodeId,
    ) -> (SimDuration, ChurnEvent) {
        let downtime = self.sample_exp(self.config.mean_downtime);
        let event = if self.rng.gen_bool(self.config.whitewash_probability) {
            ChurnEvent::Whitewash(node, alloc_identity())
        } else {
            ChurnEvent::Rejoin(node)
        };
        (downtime, event)
    }

    /// Convenience: full next transition given the node's current state.
    pub fn next_transition(
        &mut self,
        node: NodeId,
        currently_online: bool,
        alloc_identity: impl FnOnce() -> NodeId,
    ) -> (SimDuration, ChurnEvent) {
        if currently_online {
            self.next_departure(node)
        } else {
            self.next_return(node, alloc_identity)
        }
    }

    fn sample_exp(&mut self, mean: SimDuration) -> SimDuration {
        let mean_s = mean.as_secs_f64();
        SimDuration::from_secs_f64(self.rng.gen_exp(1.0 / mean_s))
    }
}

/// Computes the steady-state expected availability of a node under a churn
/// configuration: `up / (up + down)`.
pub fn expected_availability(config: &ChurnConfig) -> f64 {
    let up = config.mean_session.as_secs_f64();
    let down = config.mean_downtime.as_secs_f64();
    up / (up + down)
}

/// The expected fraction of rejoin events that are whitewashes after `t`
/// of simulated time is simply the configured probability; exposed for
/// experiment sanity checks.
pub fn expected_whitewash_rate(config: &ChurnConfig) -> f64 {
    config.whitewash_probability
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChurnConfig {
        ChurnConfig {
            mean_session: SimDuration::from_secs(100),
            mean_downtime: SimDuration::from_secs(25),
            whitewash_probability: 0.3,
            crash_fraction: 0.5,
        }
    }

    #[test]
    fn validate_catches_bad_parameters() {
        let mut c = cfg();
        c.whitewash_probability = 1.5;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.mean_session = SimDuration::ZERO;
        assert!(c.validate().is_err());
        assert!(cfg().validate().is_ok());
    }

    #[test]
    fn session_lengths_match_mean() {
        let mut p = ChurnProcess::new(cfg(), SimRng::seed_from_u64(0));
        let n = 5_000;
        let total: f64 = (0..n)
            .map(|_| p.next_departure(NodeId(0)).0.as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "mean session {mean}");
    }

    #[test]
    fn crash_fraction_matches() {
        let mut p = ChurnProcess::new(cfg(), SimRng::seed_from_u64(1));
        let crashes = (0..10_000)
            .filter(|_| matches!(p.next_departure(NodeId(0)).1, ChurnEvent::Crash(_)))
            .count();
        let rate = crashes as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.03, "crash rate {rate}");
    }

    #[test]
    fn whitewash_rate_matches_and_allocates_fresh_ids() {
        let mut p = ChurnProcess::new(cfg(), SimRng::seed_from_u64(2));
        let mut next_id = 100u32;
        let mut whitewashes = 0;
        for _ in 0..10_000 {
            let (_, ev) = p.next_return(NodeId(0), || {
                let id = NodeId(next_id);
                next_id += 1;
                id
            });
            if let ChurnEvent::Whitewash(old, new) = ev {
                assert_eq!(old, NodeId(0));
                assert!(new.0 >= 100);
                whitewashes += 1;
            }
        }
        let rate = whitewashes as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "whitewash rate {rate}");
    }

    #[test]
    fn lifecycle_tracks_online_state() {
        let mut lc = NodeLifecycle::new();
        lc.register(NodeId(1));
        assert!(lc.is_online(NodeId(1)));
        lc.apply(ChurnEvent::Crash(NodeId(1)));
        assert!(!lc.is_online(NodeId(1)));
        lc.apply(ChurnEvent::Rejoin(NodeId(1)));
        assert!(lc.is_online(NodeId(1)));
        assert_eq!(lc.online_count(), 1);
    }

    #[test]
    fn lifecycle_tracks_whitewash_genealogy() {
        let mut lc = NodeLifecycle::new();
        lc.register(NodeId(1));
        lc.apply(ChurnEvent::Leave(NodeId(1)));
        lc.apply(ChurnEvent::Whitewash(NodeId(1), NodeId(2)));
        lc.apply(ChurnEvent::Leave(NodeId(2)));
        lc.apply(ChurnEvent::Whitewash(NodeId(2), NodeId(3)));
        assert_eq!(lc.whitewashed_from(NodeId(3)), Some(NodeId(2)));
        assert_eq!(lc.root_identity(NodeId(3)), NodeId(1));
        assert_eq!(lc.root_identity(NodeId(1)), NodeId(1));
        assert!(lc.is_online(NodeId(3)));
        assert!(!lc.is_online(NodeId(1)));
    }

    #[test]
    fn online_identity_of_events() {
        assert_eq!(ChurnEvent::Leave(NodeId(1)).online_identity(), None);
        assert_eq!(
            ChurnEvent::Rejoin(NodeId(1)).online_identity(),
            Some(NodeId(1))
        );
        assert_eq!(
            ChurnEvent::Whitewash(NodeId(1), NodeId(2)).online_identity(),
            Some(NodeId(2))
        );
    }

    #[test]
    fn availability_formula() {
        let a = expected_availability(&cfg());
        assert!((a - 0.8).abs() < 1e-12);
        assert_eq!(expected_whitewash_rate(&cfg()), 0.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut p1 = ChurnProcess::new(cfg(), SimRng::seed_from_u64(9));
        let mut p2 = ChurnProcess::new(cfg(), SimRng::seed_from_u64(9));
        for _ in 0..100 {
            assert_eq!(p1.next_departure(NodeId(5)), p2.next_departure(NodeId(5)));
        }
    }
}
