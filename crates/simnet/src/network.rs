//! The simulated network: message transport with latency and loss.
//!
//! The [`Network`] owns per-node mailboxes. Sending computes a delivery
//! time through the configured [`LatencyModel`] and [`LossModel`] and
//! enqueues the envelope on an internal in-flight heap; the simulation
//! driver moves messages into mailboxes as virtual time advances.

use crate::faults::{FaultInjector, MessageVerdict};
use crate::latency::{ConstantLatency, LatencyModel, LossModel, NoLoss};
use crate::message::{Envelope, MessageId, Payload};
use crate::metrics::Counter;
use crate::pool::BufferPool;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Transport configuration: the latency and loss models.
#[derive(Debug)]
pub struct NetworkConfig {
    /// One-way delay model.
    pub latency: Box<dyn LatencyModel>,
    /// Drop model.
    pub loss: Box<dyn LossModel>,
}

impl Default for NetworkConfig {
    /// 10 ms constant latency, no loss — a benign LAN.
    fn default() -> Self {
        NetworkConfig {
            latency: Box::new(ConstantLatency(SimDuration::from_millis(10))),
            loss: Box::new(NoLoss),
        }
    }
}

/// Aggregate transport statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages handed to the network.
    pub sent: Counter,
    /// Messages placed in a mailbox.
    pub delivered: Counter,
    /// Messages dropped by the loss model.
    pub dropped: Counter,
    /// Messages addressed to a dead node at delivery time.
    pub dead_letter: Counter,
    /// Total bytes handed to the network.
    pub bytes_sent: Counter,
    /// Messages dropped by an injected dead-letter burst.
    pub fault_dropped: Counter,
    /// Messages delivered twice by an injected duplicate.
    pub fault_duplicated: Counter,
    /// Payloads bit-flipped in flight by an injected corruption.
    pub fault_corrupted: Counter,
    /// Messages given extra delay by an injected reorder.
    pub fault_delayed: Counter,
}

impl NetworkStats {
    /// Total injected wire faults of any kind.
    pub fn faults_injected(&self) -> u64 {
        self.fault_dropped.value()
            + self.fault_duplicated.value()
            + self.fault_corrupted.value()
            + self.fault_delayed.value()
    }
}

/// What happened to a message at send time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// Scheduled for delivery at the given time.
    Scheduled(SimTime),
    /// Dropped by the loss model; it will never arrive.
    Lost,
}

struct InFlight {
    deliver_at: SimTime,
    seq: u64,
    envelope: Envelope,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, seq).
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The message transport between simulated nodes.
pub struct Network {
    config: NetworkConfig,
    rng: SimRng,
    now: SimTime,
    stats: NetworkStats,
    mailboxes: Vec<Vec<Envelope>>,
    alive: Vec<bool>,
    in_flight: BinaryHeap<InFlight>,
    next_msg: u64,
    next_seq: u64,
    pool: BufferPool,
    faults: Option<FaultInjector>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.mailboxes.len())
            .field("in_flight", &self.in_flight.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Network {
    /// Creates a network with the given transport models and RNG fork.
    pub fn new(config: NetworkConfig, rng: SimRng) -> Self {
        Network {
            config,
            rng,
            now: SimTime::ZERO,
            stats: NetworkStats::default(),
            mailboxes: Vec::new(),
            alive: Vec::new(),
            in_flight: BinaryHeap::new(),
            next_msg: 0,
            next_seq: 0,
            pool: BufferPool::new(),
            faults: None,
        }
    }

    /// Attaches a wire-fault injector; sends from now on are subject to
    /// its message faults (duplicate / reorder / corrupt / dead-letter).
    /// Verdicts are pure functions of `(injector seed, message id,
    /// clock)`, so the fault schedule replays with the traffic. Returns
    /// the previously attached injector, if any.
    pub fn attach_faults(&mut self, injector: FaultInjector) -> Option<FaultInjector> {
        self.faults.replace(injector)
    }

    /// Detaches the wire-fault injector, returning it.
    pub fn detach_faults(&mut self) -> Option<FaultInjector> {
        self.faults.take()
    }

    /// The attached wire-fault injector, if any.
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// The network-owned field-buffer pool. Protocols acquire outgoing
    /// record buffers here; the network recycles them itself whenever it
    /// consumes a payload (loss at send time, dead-letter at delivery,
    /// mailbox clearing on death).
    pub fn pool_mut(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    /// Read access to the pool (reuse statistics).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Registers a new node; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.mailboxes.len());
        self.mailboxes.push(Vec::new());
        self.alive.push(true);
        id
    }

    /// Number of registered nodes (alive or not).
    pub fn node_count(&self) -> usize {
        self.mailboxes.len()
    }

    /// Whether `node` is currently alive (receives messages).
    ///
    /// # Panics
    ///
    /// Panics if `node` was never registered.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Marks a node alive or dead. Dead nodes silently drop deliveries
    /// (dead-letter) and their mailbox is cleared on death.
    pub fn set_alive(&mut self, node: NodeId, alive: bool) {
        self.alive[node.index()] = alive;
        if !alive {
            for envelope in self.mailboxes[node.index()].drain(..) {
                self.pool.recycle(envelope.payload);
            }
        }
    }

    /// The current network clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Replaces the loss model (e.g. at a partition or heal boundary),
    /// returning the displaced model so it can be restored later.
    /// Messages already in flight keep the delivery verdicts they were
    /// given at send time.
    pub fn set_loss(&mut self, loss: Box<dyn LossModel>) -> Box<dyn LossModel> {
        std::mem::replace(&mut self.config.loss, loss)
    }

    /// Replaces the latency model (e.g. when regional topology changes),
    /// returning the displaced model. Messages already in flight keep
    /// their original delivery times.
    pub fn set_latency(&mut self, latency: Box<dyn LatencyModel>) -> Box<dyn LatencyModel> {
        std::mem::replace(&mut self.config.latency, latency)
    }

    /// Sends `payload` from `from` to `to`.
    ///
    /// Returns the message id and the outcome. Sending from or to an
    /// unregistered node panics; sending from a dead node is allowed (the
    /// higher layer decides liveness semantics at send time).
    pub fn send(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload: Payload,
    ) -> (MessageId, DeliveryOutcome) {
        assert!(
            from.index() < self.mailboxes.len(),
            "sender {from} not registered"
        );
        assert!(
            to.index() < self.mailboxes.len(),
            "recipient {to} not registered"
        );
        let id = MessageId(self.next_msg);
        self.next_msg += 1;
        let mut envelope = Envelope {
            id,
            from,
            to,
            sent_at: self.now,
            payload,
        };
        self.stats.sent.incr();
        self.stats.bytes_sent.add(envelope.wire_size() as u64);
        if self.config.loss.is_lost(from, to, &mut self.rng) {
            self.stats.dropped.incr();
            self.pool.recycle(envelope.payload);
            return (id, DeliveryOutcome::Lost);
        }
        // Wire faults apply after the loss model: the injector sees only
        // traffic the environment would have delivered, and its verdicts
        // never consume from the transport RNG, so attaching faults
        // leaves the underlying delivery schedule untouched.
        let verdict = match &self.faults {
            Some(injector) => injector.message_verdict(id, self.now),
            None => MessageVerdict::default(),
        };
        if verdict.dropped {
            self.stats.fault_dropped.incr();
            self.pool.recycle(envelope.payload);
            return (id, DeliveryOutcome::Lost);
        }
        if verdict.corrupted {
            if let Some(injector) = &self.faults {
                injector.corrupt_payload(id, &mut envelope.payload);
            }
            self.stats.fault_corrupted.incr();
        }
        let delay = self.config.latency.delay(from, to, &mut self.rng);
        let mut deliver_at = self.now + delay;
        if verdict.extra_delay > SimDuration::ZERO {
            deliver_at = deliver_at.saturating_add(verdict.extra_delay);
            self.stats.fault_delayed.incr();
        }
        if verdict.duplicated {
            // A true duplicate: same id, same payload, same instant —
            // the receiver sees the message twice.
            let copy = envelope.clone();
            let seq = self.next_seq;
            self.next_seq += 1;
            self.in_flight.push(InFlight {
                deliver_at,
                seq,
                envelope: copy,
            });
            self.stats.fault_duplicated.incr();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_flight.push(InFlight {
            deliver_at,
            seq,
            envelope,
        });
        (id, DeliveryOutcome::Scheduled(deliver_at))
    }

    /// Time of the next pending delivery, if any.
    pub fn next_delivery_time(&self) -> Option<SimTime> {
        self.in_flight.peek().map(|m| m.deliver_at)
    }

    /// Advances the network clock to `now`, moving every message whose
    /// delivery time has arrived into its destination mailbox.
    ///
    /// The clock is monotone: a `now` earlier than the current clock is
    /// clamped to it (delivering anything already due) instead of
    /// silently rewinding time — a rewound clock would let subsequent
    /// sends schedule deliveries in the past.
    ///
    /// Returns the number of messages delivered.
    pub fn advance_to(&mut self, now: SimTime) -> usize {
        let now = now.max(self.now);
        self.now = now;
        let mut delivered = 0;
        while let Some(top) = self.in_flight.peek() {
            if top.deliver_at > now {
                break;
            }
            // tsn-lint: allow(no-unwrap, "pop directly follows a successful peek on the same queue within one &mut borrow")
            let msg = self.in_flight.pop().expect("peeked entry exists").envelope;
            if self.alive[msg.to.index()] {
                self.mailboxes[msg.to.index()].push(msg);
                self.stats.delivered.incr();
                delivered += 1;
            } else {
                self.stats.dead_letter.incr();
                self.pool.recycle(msg.payload);
            }
        }
        delivered
    }

    /// Drains and returns the mailbox of `node`.
    pub fn take_inbox(&mut self, node: NodeId) -> Vec<Envelope> {
        std::mem::take(&mut self.mailboxes[node.index()])
    }

    /// Swaps the mailbox of `node` with `scratch` (which must be empty):
    /// the caller gets the pending envelopes, the mailbox inherits the
    /// scratch buffer's capacity. The allocation-free spelling of
    /// [`Network::take_inbox`] for per-round loops.
    pub fn swap_inbox(&mut self, node: NodeId, scratch: &mut Vec<Envelope>) {
        debug_assert!(scratch.is_empty(), "swap_inbox scratch must be drained");
        std::mem::swap(&mut self.mailboxes[node.index()], scratch);
    }

    /// Number of messages waiting in `node`'s mailbox.
    pub fn inbox_len(&self, node: NodeId) -> usize {
        self.mailboxes[node.index()].len()
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Messages still in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::BernoulliLoss;

    fn lan() -> Network {
        Network::new(NetworkConfig::default(), SimRng::seed_from_u64(0))
    }

    #[test]
    fn send_and_deliver() {
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        let (_, outcome) = net.send(a, b, "hi".into());
        assert_eq!(
            outcome,
            DeliveryOutcome::Scheduled(SimTime::from_millis(10))
        );
        assert_eq!(net.inbox_len(b), 0);
        assert_eq!(net.advance_to(SimTime::from_millis(10)), 1);
        let inbox = net.take_inbox(b);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].from, a);
        assert_eq!(inbox[0].payload, Payload::from("hi"));
        assert_eq!(net.stats().delivered.value(), 1);
    }

    #[test]
    fn delivery_waits_for_latency() {
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        net.send(a, b, "x".into());
        assert_eq!(net.advance_to(SimTime::from_millis(9)), 0);
        assert_eq!(net.in_flight_len(), 1);
        assert_eq!(net.advance_to(SimTime::from_millis(10)), 1);
        assert_eq!(net.in_flight_len(), 0);
    }

    #[test]
    fn dead_node_dead_letters() {
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        net.send(a, b, "x".into());
        net.set_alive(b, false);
        assert_eq!(net.advance_to(SimTime::from_secs(1)), 0);
        assert_eq!(net.stats().dead_letter.value(), 1);
        assert_eq!(net.take_inbox(b).len(), 0);
    }

    #[test]
    fn death_clears_mailbox() {
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        net.send(a, b, "x".into());
        net.advance_to(SimTime::from_secs(1));
        assert_eq!(net.inbox_len(b), 1);
        net.set_alive(b, false);
        assert_eq!(net.inbox_len(b), 0);
    }

    #[test]
    fn lossy_network_drops() {
        let config = NetworkConfig {
            latency: Box::new(ConstantLatency(SimDuration::from_millis(1))),
            loss: Box::new(BernoulliLoss::new(1.0)),
        };
        let mut net = Network::new(config, SimRng::seed_from_u64(1));
        let a = net.add_node();
        let b = net.add_node();
        let (_, outcome) = net.send(a, b, "x".into());
        assert_eq!(outcome, DeliveryOutcome::Lost);
        assert_eq!(net.stats().dropped.value(), 1);
        assert_eq!(net.advance_to(SimTime::from_secs(1)), 0);
    }

    #[test]
    fn message_ids_are_unique_and_ordered() {
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        let (id1, _) = net.send(a, b, "1".into());
        let (id2, _) = net.send(a, b, "2".into());
        assert!(id1 < id2);
    }

    #[test]
    fn same_time_deliveries_preserve_send_order() {
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        net.send(a, b, "first".into());
        net.send(a, b, "second".into());
        net.advance_to(SimTime::from_millis(10));
        let inbox = net.take_inbox(b);
        assert_eq!(inbox[0].payload, Payload::from("first"));
        assert_eq!(inbox[1].payload, Payload::from("second"));
    }

    #[test]
    fn bytes_accounting() {
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        net.send(a, b, "abcd".into());
        assert_eq!(net.stats().bytes_sent.value(), 52);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn sending_to_unregistered_panics() {
        let mut net = lan();
        let a = net.add_node();
        net.send(a, NodeId(42), "x".into());
    }

    #[test]
    fn advance_to_never_rewinds_the_clock() {
        // Regression: `advance_to` used to set `now` unconditionally, so
        // a caller passing an earlier time silently rewound the clock and
        // subsequent sends scheduled deliveries in the past.
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        net.advance_to(SimTime::from_secs(10));
        assert_eq!(net.now(), SimTime::from_secs(10));
        // An earlier target is clamped, not honoured.
        net.advance_to(SimTime::from_secs(3));
        assert_eq!(net.now(), SimTime::from_secs(10));
        // A send after the attempted rewind still schedules in the future
        // relative to the real clock.
        let (_, outcome) = net.send(a, b, "x".into());
        assert_eq!(
            outcome,
            DeliveryOutcome::Scheduled(SimTime::from_secs(10) + SimDuration::from_millis(10))
        );
        // Clamped advances still deliver anything already due.
        assert_eq!(net.advance_to(SimTime::ZERO), 0);
        net.advance_to(SimTime::from_secs(11));
        assert_eq!(net.inbox_len(b), 1);
    }

    #[test]
    fn loss_and_latency_models_swap_at_runtime() {
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        // Swap in a total-loss model: new sends are dropped.
        let previous = net.set_loss(Box::new(BernoulliLoss::new(1.0)));
        let (_, outcome) = net.send(a, b, "dropped".into());
        assert_eq!(outcome, DeliveryOutcome::Lost);
        // Restore the displaced model: traffic flows again.
        net.set_loss(previous);
        let (_, outcome) = net.send(a, b, "kept".into());
        assert!(matches!(outcome, DeliveryOutcome::Scheduled(_)));
        // Latency swaps only affect messages sent afterwards.
        net.set_latency(Box::new(ConstantLatency(SimDuration::from_millis(500))));
        let (_, outcome) = net.send(a, b, "slow".into());
        assert_eq!(
            outcome,
            DeliveryOutcome::Scheduled(SimTime::from_millis(500))
        );
    }

    #[test]
    fn message_in_flight_survives_a_die_revive_cycle() {
        // Aliveness is checked at *delivery* time: a message sent while
        // the recipient was up, crossing a death + revival, is delivered
        // if the node is back before `deliver_at`.
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        net.send(a, b, "survivor".into());
        net.set_alive(b, false);
        net.set_alive(b, true);
        assert_eq!(net.advance_to(SimTime::from_millis(10)), 1);
        assert_eq!(net.inbox_len(b), 1);
        assert_eq!(net.stats().dead_letter.value(), 0);
    }

    #[test]
    fn attached_faults_duplicate_drop_delay_and_corrupt_deterministically() {
        use crate::faults::{FaultPlan, MessageFault, MessageFaultKind};

        let certain = |kind| FaultPlan {
            message: vec![MessageFault {
                start: SimTime::ZERO,
                end: SimTime::MAX,
                kind,
            }],
            ..FaultPlan::default()
        };

        // Duplicate: one send, two deliveries of the same id.
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        net.attach_faults(
            FaultInjector::new(certain(MessageFaultKind::Duplicate { probability: 1.0 }), 9)
                .unwrap(),
        );
        let (id, _) = net.send(a, b, "twice".into());
        assert_eq!(net.advance_to(SimTime::from_secs(1)), 2);
        let inbox = net.take_inbox(b);
        assert_eq!(inbox.len(), 2);
        assert!(inbox.iter().all(|e| e.id == id));
        assert_eq!(net.stats().fault_duplicated.value(), 1);
        assert_eq!(net.stats().sent.value(), 1, "a duplicate is not a send");

        // Dead-letter burst: dropped at send time, distinct from the
        // loss model's counter.
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        net.attach_faults(
            FaultInjector::new(
                certain(MessageFaultKind::DeadLetterBurst { probability: 1.0 }),
                9,
            )
            .unwrap(),
        );
        let (_, outcome) = net.send(a, b, "gone".into());
        assert_eq!(outcome, DeliveryOutcome::Lost);
        assert_eq!(net.stats().fault_dropped.value(), 1);
        assert_eq!(net.stats().dropped.value(), 0);
        assert_eq!(net.stats().faults_injected(), 1);

        // Reorder: extra delay within the bound lets a later send
        // overtake an earlier one.
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        net.attach_faults(
            FaultInjector::new(
                certain(MessageFaultKind::Reorder {
                    probability: 1.0,
                    bound: SimDuration::from_secs(5),
                }),
                9,
            )
            .unwrap(),
        );
        let (_, DeliveryOutcome::Scheduled(at)) = net.send(a, b, "late".into()) else {
            panic!("reorder never drops");
        };
        assert!(at > SimTime::from_millis(10), "extra delay applied");
        assert!(at <= SimTime::from_millis(10).saturating_add(SimDuration::from_secs(5)));
        assert_eq!(net.stats().fault_delayed.value(), 1);

        // Corrupt: the delivered record differs from the sent one by
        // exactly one bit, identically across same-seed runs.
        let run = |seed: u64| {
            let mut net = lan();
            let a = net.add_node();
            let b = net.add_node();
            net.attach_faults(
                FaultInjector::new(
                    certain(MessageFaultKind::Corrupt { probability: 1.0 }),
                    seed,
                )
                .unwrap(),
            );
            net.send(a, b, Payload::record("r", vec![1.0, 2.0, 3.0]));
            net.advance_to(SimTime::from_secs(1));
            net.take_inbox(b).remove(0).payload
        };
        let first = run(9);
        assert_eq!(first, run(9), "same seed, same corruption");
        assert_ne!(
            first,
            Payload::record("r", vec![1.0, 2.0, 3.0]),
            "payload actually corrupted"
        );

        // Detach restores a clean wire.
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        net.attach_faults(
            FaultInjector::new(
                certain(MessageFaultKind::DeadLetterBurst { probability: 1.0 }),
                9,
            )
            .unwrap(),
        );
        assert!(net.detach_faults().is_some());
        let (_, outcome) = net.send(a, b, "clean".into());
        assert!(matches!(outcome, DeliveryOutcome::Scheduled(_)));
        assert_eq!(net.stats().faults_injected(), 0);
    }

    #[test]
    fn fault_free_injector_leaves_the_delivery_schedule_untouched() {
        use crate::faults::FaultPlan;
        // Attaching a quiet plan must not perturb latency/loss draws:
        // verdicts never consume from the transport RNG.
        let drive = |attach: bool| {
            let config = NetworkConfig {
                latency: Box::new(crate::latency::UniformLatency::new(
                    SimDuration::from_millis(1),
                    SimDuration::from_millis(100),
                )),
                loss: Box::new(BernoulliLoss::new(0.2)),
            };
            let mut net = Network::new(config, SimRng::seed_from_u64(7));
            let a = net.add_node();
            let b = net.add_node();
            if attach {
                net.attach_faults(FaultInjector::new(FaultPlan::default(), 99).unwrap());
            }
            (0..200)
                .map(|i| net.send(a, b, Payload::record("m", vec![i as f64])).1)
                .collect::<Vec<_>>()
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn message_in_flight_to_a_dead_node_dead_letters_even_after_later_revival() {
        let mut net = lan();
        let a = net.add_node();
        let b = net.add_node();
        net.send(a, b, "late".into());
        net.set_alive(b, false);
        // The delivery instant passes while b is down.
        net.advance_to(SimTime::from_millis(10));
        net.set_alive(b, true);
        net.advance_to(SimTime::from_secs(1));
        assert_eq!(net.inbox_len(b), 0);
        assert_eq!(net.stats().dead_letter.value(), 1);
    }
}
