//! The peer-sampling membership layer: bounded partial views refreshed
//! by deterministic view shuffling.
//!
//! The source paper's central object is a peer-sampling service built
//! on *view shuffling*: every node holds a small bounded view of
//! `(peer, age)` entries and periodically swaps a half-view with a
//! partner; the paper's headline result is that this shuffling yields
//! provably uniform samples of the live population. This module is
//! that service as a simulation substrate:
//!
//! * [`PartialView`] — one node's bounded, aged entry list;
//! * [`MembershipConfig`] — view size and the shuffle family's
//!   exchange-length / healing / swap parameters;
//! * [`MembershipRuntime`] — the per-population overlay: bootstrap
//!   through relay nodes, one deterministic push-pull shuffle sweep per
//!   call to [`MembershipRuntime::shuffle_round`].
//!
//! ## The shuffle step
//!
//! Per round, every live node (ascending slot order — the determinism
//! contract) does one push-pull exchange:
//!
//! 1. ages every entry in its view;
//! 2. picks the *oldest* live entry as partner, pruning dead entries
//!    encountered on the way (the crash-healing path);
//! 3. sends a fresh self-entry plus up to `shuffle_len - 1` random
//!    entries; the partner replies symmetrically;
//! 4. both sides merge: received entries that duplicate an existing
//!    peer keep the younger age; overflow beyond `view_size` evicts
//!    first up to `healing` oldest entries, then up to `swap` of the
//!    entries just sent, then random entries.
//!
//! This is the peer-sampling framework's `(tail, push-pull, H, S)`
//! instantiation — the family the paper's uniformity analysis covers.
//!
//! ## Bootstrap and relays
//!
//! The first [`MembershipConfig::relays`] slots of the population are
//! *relay* (bootstrap) nodes: real entities that churn, crash and die
//! like everyone else (a [`DynamicsPlan`](crate::DynamicsPlan) or
//! [`FaultPlan`](crate::FaultPlan) can target them — see the
//! `relay_outage` presets). Initial views are handed out by a relay:
//! each node starts with its relay plus a sample of previously joined
//! peers. A node whose view decays to nothing re-bootstraps through a
//! live relay; with every relay down it stays *isolated* until a relay
//! recovers — which is exactly the failure mode the `relay_outage`
//! scenarios measure.
//!
//! ## Determinism
//!
//! All randomness draws from per-round streams
//! ([`StreamDomain::MembershipShuffle`]) under a dedicated seed, so an
//! overlay attached to an existing experiment never perturbs the
//! experiment's own draw sequences, and a `(seed, config)` pair replays
//! the overlay bit-for-bit.

use crate::rng::SimRng;
use crate::streams::StreamDomain;
use crate::NodeId;

/// Salt XORed into an experiment's seed to derive the membership
/// overlay's own seed family. Mirrors the dynamics-runtime idiom: the
/// overlay is seeded *beside* the main stream, never forked from it,
/// so attaching it leaves every pre-existing draw sequence untouched.
pub const MEMBERSHIP_SEED_SALT: u64 = 0x3F29_8C5B_D410_66A7;

/// One entry of a [`PartialView`]: a peer descriptor with its age in
/// shuffle rounds since the entry was (re)freshed at its origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewEntry {
    /// The peer (population slot) this entry describes.
    pub peer: NodeId,
    /// Rounds since this entry was created fresh (age 0) by its peer.
    pub age: u32,
}

/// A bounded, aged partial view — one node's entire knowledge of the
/// population.
///
/// Invariants (property-tested): no entry for the owner itself, no
/// duplicate peers, never more than `capacity` entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartialView {
    entries: Vec<ViewEntry>,
    capacity: usize,
}

impl PartialView {
    /// An empty view bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        PartialView {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// The bound on the number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view holds no entries (the isolated state).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, in insertion order.
    pub fn entries(&self) -> &[ViewEntry] {
        &self.entries
    }

    /// The peers currently in view.
    pub fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.peer)
    }

    /// Whether `peer` is in view.
    pub fn contains(&self, peer: NodeId) -> bool {
        self.entries.iter().any(|e| e.peer == peer)
    }

    /// Ages every entry by one round (saturating).
    pub fn age_all(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// The oldest entry's peer (first of the maxima — deterministic).
    pub fn oldest(&self) -> Option<NodeId> {
        let mut best: Option<&ViewEntry> = None;
        for e in &self.entries {
            if best.is_none_or(|b| e.age > b.age) {
                best = Some(e);
            }
        }
        best.map(|e| e.peer)
    }

    /// Removes `peer`'s entry; returns whether one existed.
    pub fn remove(&mut self, peer: NodeId) -> bool {
        match self.entries.iter().position(|e| e.peer == peer) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// Inserts a fresh (age 0) entry for `peer` if it is absent and
    /// the view has room; returns whether the entry was added.
    pub fn insert_fresh(&mut self, peer: NodeId) -> bool {
        if self.entries.len() >= self.capacity || self.contains(peer) {
            return false;
        }
        self.entries.push(ViewEntry { peer, age: 0 });
        true
    }

    /// A uniformly random peer from the view.
    pub fn sample(&self, rng: &mut SimRng) -> Option<NodeId> {
        rng.choose(&self.entries).map(|e| e.peer)
    }
}

/// Configuration of the membership overlay.
///
/// Defaults follow the peer-sampling literature's healthy mid-range:
/// views of 16, half-view exchanges, one healing slot, full swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// View capacity per node (the paper's `c`).
    pub view_size: usize,
    /// Entries exchanged per shuffle, fresh self-entry included (the
    /// half-view length; must not exceed `view_size`).
    pub shuffle_len: usize,
    /// Healing parameter `H`: on overflow, up to this many *oldest*
    /// entries are evicted first (crash tolerance).
    pub healing: usize,
    /// Swap parameter `S`: after healing, up to this many of the
    /// entries *just sent* are evicted (keeps views from converging
    /// onto each other).
    pub swap: usize,
    /// Number of relay / bootstrap nodes: the first `relays` slots of
    /// the population. Real entities — they shuffle, churn and crash
    /// like everyone else.
    pub relays: usize,
    /// Entries a relay hands out on (re)bootstrap: the relay itself
    /// plus up to `relay_fanout - 1` peers sampled from the relay's
    /// own view.
    pub relay_fanout: usize,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            view_size: 16,
            shuffle_len: 8,
            healing: 1,
            swap: 7,
            relays: 3,
            relay_fanout: 8,
        }
    }
}

impl MembershipConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.view_size == 0 {
            return Err("membership view_size must be at least 1".into());
        }
        if self.shuffle_len == 0 || self.shuffle_len > self.view_size {
            return Err("membership shuffle_len must be in [1, view_size]".into());
        }
        if self.healing + self.swap > self.view_size {
            return Err("membership healing + swap must not exceed view_size".into());
        }
        if self.relays == 0 {
            return Err("membership needs at least 1 relay".into());
        }
        if self.relay_fanout == 0 || self.relay_fanout > self.view_size {
            return Err("membership relay_fanout must be in [1, view_size]".into());
        }
        Ok(())
    }
}

/// Counters of overlay activity since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Shuffle rounds executed.
    pub rounds: u64,
    /// Push-pull exchanges completed.
    pub exchanges: u64,
    /// Dead entries pruned during partner search.
    pub pruned: u64,
    /// Re-bootstraps served by a live relay.
    pub rebootstraps: u64,
    /// Node-rounds spent isolated (empty view, no reachable relay).
    pub isolated: u64,
}

/// The per-population peer-sampling overlay: one [`PartialView`] per
/// slot plus the deterministic shuffle protocol.
#[derive(Debug, Clone)]
pub struct MembershipRuntime {
    config: MembershipConfig,
    seed: u64,
    views: Vec<PartialView>,
    round: u64,
    stats: ShuffleStats,
    // Exchange scratch, reused across pairs to keep the sweep
    // allocation-free after warm-up.
    send_a: Vec<ViewEntry>,
    send_b: Vec<ViewEntry>,
}

impl MembershipRuntime {
    /// Builds the overlay for an `n`-slot population and bootstraps
    /// every initial view through the relays. `seed` is the overlay's
    /// own seed — derive it as `experiment_seed ^ MEMBERSHIP_SEED_SALT`
    /// so the overlay never perturbs the experiment's draw sequences.
    ///
    /// # Errors
    ///
    /// Returns the config's validation error, or an error when the
    /// population is smaller than the relay set.
    pub fn new(n: usize, config: MembershipConfig, seed: u64) -> Result<Self, String> {
        config.validate()?;
        if n < config.relays + 1 {
            return Err(format!(
                "membership needs more nodes ({n}) than relays ({})",
                config.relays
            ));
        }
        let mut views = vec![PartialView::new(config.view_size); n];
        // Bootstrap: each node asks relay `slot % relays`, which hands
        // out itself plus a sample of already-joined peers (the state a
        // real relay accumulates as the population trickles in).
        for (slot, view) in views.iter_mut().enumerate() {
            let mut rng = StreamDomain::MembershipBootstrap.stream(seed, slot as u64);
            let relay = NodeId::from_index(slot % config.relays);
            if relay.index() != slot {
                view.insert_fresh(relay);
            }
            let mut budget = 4 * config.relay_fanout;
            while view.len() < config.relay_fanout && budget > 0 {
                budget -= 1;
                let peer = NodeId::from_index(rng.gen_range(0..n));
                if peer.index() != slot {
                    view.insert_fresh(peer);
                }
            }
        }
        Ok(MembershipRuntime {
            config,
            seed,
            views,
            round: 0,
            stats: ShuffleStats::default(),
            send_a: Vec::new(),
            send_b: Vec::new(),
        })
    }

    /// The overlay configuration.
    pub fn config(&self) -> &MembershipConfig {
        &self.config
    }

    /// The relay (bootstrap) slots: the first `relays` node ids.
    pub fn relays(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.config.relays).map(NodeId::from_index)
    }

    /// Whether `node` is a relay slot.
    pub fn is_relay(&self, node: NodeId) -> bool {
        node.index() < self.config.relays
    }

    /// One node's view.
    pub fn view(&self, node: NodeId) -> &PartialView {
        &self.views[node.index()]
    }

    /// All views, slot-indexed — the frozen per-round snapshot the
    /// sharded scenario path reads.
    pub fn views(&self) -> &[PartialView] {
        &self.views
    }

    /// Activity counters since construction.
    pub fn stats(&self) -> ShuffleStats {
        self.stats
    }

    /// Shuffle rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Executes one deterministic shuffle sweep: every node for which
    /// `alive` holds, in ascending slot order, runs the push-pull
    /// exchange described in the [module docs](self). `reachable(a, b)`
    /// gates partner and relay contact (partitions, regional cuts);
    /// pass `|_, _| true` on an unpartitioned substrate.
    ///
    /// Draws come from this round's
    /// [`StreamDomain::MembershipShuffle`] stream only, so overlay
    /// state after `k` rounds is a pure function of
    /// `(seed, config, alive/reachable history)`.
    pub fn shuffle_round(
        &mut self,
        alive: impl Fn(NodeId) -> bool,
        reachable: impl Fn(NodeId, NodeId) -> bool,
    ) {
        let mut rng = StreamDomain::MembershipShuffle.stream(self.seed, self.round);
        self.round += 1;
        self.stats.rounds += 1;
        for slot in 0..self.views.len() {
            let initiator = NodeId::from_index(slot);
            if !alive(initiator) {
                continue;
            }
            self.views[slot].age_all();
            let partner = match self.find_partner(slot, &alive, &reachable) {
                Some(p) => p,
                None => match self.rebootstrap(slot, &mut rng, &alive, &reachable) {
                    Some(p) => p,
                    None => {
                        self.stats.isolated += 1;
                        continue;
                    }
                },
            };
            self.exchange(slot, partner.index(), &mut rng);
            self.stats.exchanges += 1;
        }
    }

    /// The oldest live, reachable peer in `slot`'s view; dead entries
    /// found on the way are pruned (healing). Unreachable-but-alive
    /// entries are kept — the partition will heal.
    fn find_partner(
        &mut self,
        slot: usize,
        alive: &impl Fn(NodeId) -> bool,
        reachable: &impl Fn(NodeId, NodeId) -> bool,
    ) -> Option<NodeId> {
        let me = NodeId::from_index(slot);
        loop {
            let oldest = self.views[slot].oldest()?;
            if !alive(oldest) {
                self.views[slot].remove(oldest);
                self.stats.pruned += 1;
                continue;
            }
            if reachable(me, oldest) {
                return Some(oldest);
            }
            // Reachability is transient; fall through the ages until a
            // contactable peer turns up, without evicting anyone.
            let mut best: Option<&ViewEntry> = None;
            for e in self.views[slot].entries() {
                if alive(e.peer) && reachable(me, e.peer) {
                    let better = match best {
                        Some(b) => e.age > b.age,
                        None => true,
                    };
                    if better {
                        best = Some(e);
                    }
                }
            }
            return best.map(|e| e.peer);
        }
    }

    /// Refills an empty (or fully unreachable) view through a live,
    /// reachable relay: the relay itself plus a sample of the relay's
    /// view. Returns the relay as the round's partner.
    fn rebootstrap(
        &mut self,
        slot: usize,
        rng: &mut SimRng,
        alive: &impl Fn(NodeId) -> bool,
        reachable: &impl Fn(NodeId, NodeId) -> bool,
    ) -> Option<NodeId> {
        let me = NodeId::from_index(slot);
        let relay = (0..self.config.relays)
            .map(NodeId::from_index)
            .find(|&r| r != me && alive(r) && reachable(me, r))?;
        // Sample up to fanout-1 handout peers from the relay's view
        // before touching our own (split-borrow via index ordering).
        let handouts: Vec<NodeId> = {
            let relay_view = &self.views[relay.index()];
            let mut picked = Vec::new();
            let mut budget = 2 * self.config.relay_fanout;
            while picked.len() + 1 < self.config.relay_fanout && budget > 0 {
                budget -= 1;
                match relay_view.sample(rng) {
                    Some(p) if p != me && !picked.contains(&p) => picked.push(p),
                    Some(_) => {}
                    None => break,
                }
            }
            picked
        };
        let view = &mut self.views[slot];
        view.insert_fresh(relay);
        for p in handouts {
            view.insert_fresh(p);
        }
        self.stats.rebootstraps += 1;
        Some(relay)
    }

    /// One push-pull exchange between live nodes `a` and `b`.
    fn exchange(&mut self, a: usize, b: usize, rng: &mut SimRng) {
        let shuffle_len = self.config.shuffle_len;
        let mut send_a = std::mem::take(&mut self.send_a);
        let mut send_b = std::mem::take(&mut self.send_b);
        fill_buffer(
            &mut send_a,
            &self.views[a],
            NodeId::from_index(a),
            shuffle_len,
            rng,
        );
        fill_buffer(
            &mut send_b,
            &self.views[b],
            NodeId::from_index(b),
            shuffle_len,
            rng,
        );
        self.merge(b, &send_a, &send_b, rng);
        self.merge(a, &send_b, &send_a, rng);
        send_a.clear();
        send_b.clear();
        self.send_a = send_a;
        self.send_b = send_b;
    }

    /// Merges `received` into `slot`'s view, evicting per the
    /// framework's healing / swap / random discipline. `sent` is what
    /// `slot` pushed out this exchange (the swap candidates).
    fn merge(&mut self, slot: usize, received: &[ViewEntry], sent: &[ViewEntry], rng: &mut SimRng) {
        let me = NodeId::from_index(slot);
        let cap = self.config.view_size;
        let view = &mut self.views[slot];
        for e in received {
            if e.peer == me {
                continue;
            }
            match view.entries.iter_mut().find(|have| have.peer == e.peer) {
                Some(have) => have.age = have.age.min(e.age),
                None => view.entries.push(*e),
            }
        }
        // Healing: evict the oldest first.
        let mut healing_left = self.config.healing;
        while view.entries.len() > cap && healing_left > 0 {
            healing_left -= 1;
            if let Some(oldest) = view.oldest() {
                view.remove(oldest);
            }
        }
        // Swap: evict what we just sent.
        let mut swap_left = self.config.swap;
        let mut sent_cursor = 0;
        while view.entries.len() > cap && swap_left > 0 && sent_cursor < sent.len() {
            let candidate = sent[sent_cursor].peer;
            sent_cursor += 1;
            if view.remove(candidate) {
                swap_left -= 1;
            }
        }
        // Random: trim the remainder.
        while view.entries.len() > cap {
            let index = rng.gen_range(0..view.entries.len());
            view.entries.remove(index);
        }
    }
}

/// Builds an exchange buffer: a fresh self-entry plus up to
/// `shuffle_len - 1` distinct random entries of `view`.
fn fill_buffer(
    buffer: &mut Vec<ViewEntry>,
    view: &PartialView,
    owner: NodeId,
    shuffle_len: usize,
    rng: &mut SimRng,
) {
    buffer.clear();
    buffer.push(ViewEntry {
        peer: owner,
        age: 0,
    });
    let want = (shuffle_len - 1).min(view.len());
    let mut budget = 4 * shuffle_len.max(1);
    while buffer.len() - 1 < want && budget > 0 {
        budget -= 1;
        if let Some(e) = rng.choose(view.entries()) {
            if !buffer.iter().any(|b| b.peer == e.peer) {
                buffer.push(*e);
            }
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overlay(n: usize, seed: u64) -> MembershipRuntime {
        MembershipRuntime::new(n, MembershipConfig::default(), seed).expect("valid")
    }

    fn everyone_up(runtime: &mut MembershipRuntime, rounds: usize) {
        for _ in 0..rounds {
            runtime.shuffle_round(|_| true, |_, _| true);
        }
    }

    fn assert_invariants(runtime: &MembershipRuntime) {
        for (slot, view) in runtime.views().iter().enumerate() {
            assert!(view.len() <= view.capacity(), "slot {slot} over capacity");
            assert!(
                !view.contains(NodeId::from_index(slot)),
                "slot {slot} holds a self-entry"
            );
            let mut peers: Vec<u32> = view.peers().map(|p| p.0).collect();
            peers.sort_unstable();
            let before = peers.len();
            peers.dedup();
            assert_eq!(before, peers.len(), "slot {slot} holds duplicates");
        }
    }

    #[test]
    fn config_validation_names_bad_fields() {
        let defaults = MembershipConfig::default();
        let config = MembershipConfig {
            view_size: 0,
            ..defaults
        };
        assert!(config.validate().unwrap_err().contains("view_size"));
        let config = MembershipConfig {
            shuffle_len: defaults.view_size + 1,
            ..defaults
        };
        assert!(config.validate().unwrap_err().contains("shuffle_len"));
        let config = MembershipConfig {
            healing: 10,
            swap: 10,
            ..defaults
        };
        assert!(config.validate().unwrap_err().contains("healing"));
        let config = MembershipConfig {
            relays: 0,
            ..defaults
        };
        assert!(config.validate().unwrap_err().contains("relay"));
        assert!(MembershipConfig::default().validate().is_ok());
    }

    #[test]
    fn bootstrap_seeds_every_view_through_relays() {
        let runtime = overlay(64, 7);
        assert_invariants(&runtime);
        for (slot, view) in runtime.views().iter().enumerate() {
            assert!(!view.is_empty(), "slot {slot} starts with an empty view");
            if !runtime.is_relay(NodeId::from_index(slot)) {
                let relay = NodeId::from_index(slot % runtime.config().relays);
                assert!(view.contains(relay), "slot {slot} misses its relay");
            }
        }
    }

    #[test]
    fn invariants_hold_across_many_rounds() {
        let mut runtime = overlay(48, 11);
        for round in 0..40 {
            runtime.shuffle_round(|_| true, |_, _| true);
            assert_invariants(&runtime);
            let max_age = runtime
                .views()
                .iter()
                .flat_map(|v| v.entries().iter().map(|e| e.age))
                .max()
                .unwrap_or(0);
            // An entry ages at its holder and can age once more after
            // traveling to a later-sweeping node in the same round —
            // so growth is bounded by two per round, never unbounded.
            assert!(
                u64::from(max_age) <= 2 * (round + 1),
                "round {round}: age {max_age} outgrew the sweep bound"
            );
        }
    }

    #[test]
    fn shuffling_is_deterministic_given_seed() {
        let run = |seed| {
            let mut runtime = overlay(32, seed);
            everyone_up(&mut runtime, 20);
            runtime.views().to_vec()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds explore different views");
    }

    #[test]
    fn dead_entries_are_pruned_and_views_heal() {
        let mut runtime = overlay(32, 13);
        everyone_up(&mut runtime, 10);
        // Kill the top half; survivors' views must shed them.
        let alive = |n: NodeId| n.index() < 16;
        for _ in 0..30 {
            runtime.shuffle_round(alive, |_, _| true);
        }
        for slot in 0..16 {
            for peer in runtime.views()[slot].peers() {
                assert!(alive(peer), "slot {slot} still references dead peer {peer}");
            }
        }
        assert!(runtime.stats().pruned > 0);
    }

    #[test]
    fn empty_view_rebootstraps_through_a_live_relay() {
        let mut runtime = overlay(16, 17);
        // Empty one node's view by hand.
        runtime.views[9] = PartialView::new(runtime.config().view_size);
        runtime.shuffle_round(|_| true, |_, _| true);
        assert!(!runtime.views()[9].is_empty(), "rebootstrap refilled it");
        assert!(runtime.stats().rebootstraps >= 1);
    }

    #[test]
    fn all_relays_dead_leaves_empty_views_isolated() {
        let mut runtime = overlay(16, 19);
        runtime.views[9] = PartialView::new(runtime.config().view_size);
        // Only node 9 is up: no relay to re-bootstrap through, and no
        // live peer whose outbound exchange could refill it.
        runtime.shuffle_round(|n| n.index() == 9, |_, _| true);
        assert!(
            runtime.views()[9].is_empty(),
            "no relay reachable, no recovery"
        );
        assert_eq!(runtime.stats().isolated, 1);
        // A recovered relay ends the isolation (through its own
        // outbound exchange or by serving a re-bootstrap).
        runtime.shuffle_round(|n| n.index() == 9 || n.index() == 0, |_, _| true);
        assert!(!runtime.views()[9].is_empty());
    }

    #[test]
    fn partition_gates_partner_choice_without_eviction() {
        let mut runtime = overlay(32, 23);
        everyone_up(&mut runtime, 8);
        // Split even/odd; exchanges must stay within a side.
        let same_side = |a: NodeId, b: NodeId| a.index() % 2 == b.index() % 2;
        let snapshot: Vec<usize> = runtime.views().iter().map(|v| v.len()).collect();
        runtime.shuffle_round(|_| true, same_side);
        // Unreachable peers were not evicted (the partition heals).
        for (slot, view) in runtime.views().iter().enumerate() {
            assert!(
                view.len() + 2 >= snapshot[slot].min(view.capacity()),
                "slot {slot} lost entries to a transient partition"
            );
        }
    }

    #[test]
    fn population_must_exceed_relay_set() {
        assert!(MembershipRuntime::new(3, MembershipConfig::default(), 1).is_err());
    }
}
