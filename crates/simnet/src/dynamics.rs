//! The dynamics layer: churn, partitions and regional latency as one
//! executable plan.
//!
//! The [`churn`](crate::churn) and [`partition`](crate::partition)
//! modules define the *vocabulary* of a realistic decentralized
//! substrate — session-based joins/leaves/crashes, whitewashing
//! re-joins, clean splits, slow WAN borders. A [`DynamicsPlan`] composes
//! them into a declarative schedule and a [`DynamicsRuntime`] *executes*
//! it against a [`Network`] on the simulation clock: churn transitions
//! interleave with message delivery at their exact event times,
//! whitewash re-joins allocate fresh identities, and loss models swap
//! at partition/heal boundaries.
//!
//! Two execution modes share the same schedule:
//!
//! * [`DynamicsRuntime::advance`] drives a real [`Network`]
//!   (`set_alive`, loss/latency swaps) — the protocol round driver uses
//!   this;
//! * [`DynamicsRuntime::advance_detached`] updates only the abstract
//!   state (online flags, identities, active partition) — the scenario
//!   engine, which has no transport, uses this.
//!
//! Every transition applied is recorded as a timestamped
//! [`DynamicsEvent`]; higher layers drain those to react (e.g. reset
//! the reputation state of a whitewashed identity).

use crate::churn::{ChurnConfig, ChurnEvent, ChurnProcess, NodeLifecycle};
use crate::network::Network;
use crate::partition::{GroupMap, PartitionedLoss, RegionalLatency};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled partition: between `start` and `end` the network's loss
/// model is replaced by a [`PartitionedLoss`] over `groups` contiguous
/// groups; at `end` the displaced model is restored (the heal).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionWindow {
    /// When the split begins.
    pub start: SimTime,
    /// When the split heals ([`SimTime::MAX`] = never).
    pub end: SimTime,
    /// Number of contiguous groups the population splits into.
    pub groups: usize,
    /// Loss probability for cross-group messages (1.0 = clean split).
    pub cross_loss: f64,
    /// Loss probability for intra-group messages.
    pub intra_loss: f64,
}

impl PartitionWindow {
    /// A clean split into `groups` groups over `[start, end)`.
    pub fn full_split(start: SimTime, end: SimTime, groups: usize) -> Self {
        PartitionWindow {
            start,
            end,
            groups,
            cross_loss: 1.0,
            intra_loss: 0.0,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.groups < 2 {
            return Err("partition window needs at least 2 groups".into());
        }
        if self.end <= self.start {
            return Err("partition window must end after it starts".into());
        }
        if !(0.0..=1.0).contains(&self.cross_loss) {
            return Err("cross_loss must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.intra_loss) {
            return Err("intra_loss must be in [0,1]".into());
        }
        Ok(())
    }
}

/// A scheduled, targeted downtime window: `node` crashes at `start`
/// and rejoins at `end` ([`SimTime::MAX`] = never), regardless of its
/// churn state. The primitive behind maintenance windows and the
/// [`DynamicsPlan::relay_outage`] preset — unlike churn, it names its
/// victim, so experiments can kill *specific* infrastructure (relay /
/// bootstrap slots) instead of a random sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// The slot forced offline.
    pub node: NodeId,
    /// When the outage begins.
    pub start: SimTime,
    /// When the node rejoins ([`SimTime::MAX`] = never).
    pub end: SimTime,
}

impl OutageWindow {
    fn validate(&self) -> Result<(), String> {
        if self.end <= self.start {
            return Err("outage window must end after it starts".into());
        }
        Ok(())
    }
}

/// A static regional topology: `groups` contiguous regions with
/// constant intra/inter-region one-way delay, installed once when the
/// runtime attaches to a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPlan {
    /// Number of contiguous regions.
    pub groups: usize,
    /// Delay within a region.
    pub intra: SimDuration,
    /// Delay across regions.
    pub inter: SimDuration,
}

impl RegionPlan {
    fn validate(&self) -> Result<(), String> {
        if self.groups == 0 {
            return Err("regions need at least one group".into());
        }
        Ok(())
    }
}

/// The full dynamics schedule of one experiment.
///
/// The default plan is *static* (no churn, no partitions, no regions):
/// attaching it is a no-op, and every layer above guarantees that a
/// static plan leaves outcomes bit-identical to running with no plan at
/// all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DynamicsPlan {
    /// Session-based churn (`None` = the population never churns).
    pub churn: Option<ChurnConfig>,
    /// Fraction of nodes that start offline (they join once their first
    /// sampled downtime elapses — the flash-crowd shape). Requires
    /// `churn` to be set when positive, otherwise they would never join.
    pub initial_offline: f64,
    /// Scheduled partitions, in chronological, non-overlapping order.
    pub partitions: Vec<PartitionWindow>,
    /// Static regional latency, if any.
    pub regions: Option<RegionPlan>,
    /// Targeted downtime windows (non-overlapping per node).
    pub outages: Vec<OutageWindow>,
}

impl DynamicsPlan {
    /// Whether this plan changes anything at all.
    pub fn is_static(&self) -> bool {
        self.churn.is_none()
            && self.initial_offline == 0.0
            && self.partitions.is_empty()
            && self.regions.is_none()
            && self.outages.is_empty()
    }

    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(churn) = &self.churn {
            churn.validate()?;
        }
        if !(0.0..=1.0).contains(&self.initial_offline) {
            return Err("initial_offline must be in [0,1]".into());
        }
        if self.initial_offline > 0.0 && self.churn.is_none() {
            return Err("initial_offline requires churn (offline nodes could never join)".into());
        }
        let mut previous_end = SimTime::ZERO;
        for (i, window) in self.partitions.iter().enumerate() {
            window
                .validate()
                .map_err(|e| format!("partition {i}: {e}"))?;
            if i > 0 && window.start < previous_end {
                return Err(format!("partition {i} overlaps its predecessor"));
            }
            previous_end = window.end;
        }
        if let Some(regions) = &self.regions {
            regions.validate()?;
        }
        for (i, outage) in self.outages.iter().enumerate() {
            outage.validate().map_err(|e| format!("outage {i}: {e}"))?;
            for (j, other) in self.outages.iter().enumerate().take(i) {
                if other.node == outage.node && outage.start < other.end && other.start < outage.end
                {
                    return Err(format!("outage {i} overlaps outage {j} on {}", outage.node));
                }
            }
        }
        Ok(())
    }

    /// Preset: a flash crowd — 75 % of the population starts offline
    /// and floods in as the (short) downtimes elapse, then churns with
    /// the given mean session length.
    pub fn flash_crowd(mean_session: SimDuration, mean_downtime: SimDuration) -> Self {
        DynamicsPlan {
            churn: Some(ChurnConfig {
                mean_session,
                mean_downtime,
                whitewash_probability: 0.0,
                crash_fraction: 0.3,
            }),
            initial_offline: 0.75,
            ..Default::default()
        }
    }

    /// Preset: one clean two-way split over `[start, end)`, healing at
    /// `end`.
    pub fn split_then_heal(start: SimTime, end: SimTime) -> Self {
        DynamicsPlan {
            partitions: vec![PartitionWindow::full_split(start, end, 2)],
            ..Default::default()
        }
    }

    /// Preset: `groups` WAN regions — fast local links, slow
    /// cross-region links, no loss.
    pub fn wan_regions(groups: usize, intra: SimDuration, inter: SimDuration) -> Self {
        DynamicsPlan {
            regions: Some(RegionPlan {
                groups,
                intra,
                inter,
            }),
            ..Default::default()
        }
    }

    /// Preset: a relay outage — the first `relays` slots (the
    /// membership overlay's bootstrap/relay nodes, see
    /// [`membership`](crate::membership)) all crash over `[start, end)`
    /// and rejoin at the heal. While they are down, nodes whose views
    /// decay cannot re-bootstrap and go *isolated* — the failure mode
    /// this preset exists to measure.
    pub fn relay_outage(relays: u32, start: SimTime, end: SimTime) -> Self {
        DynamicsPlan {
            outages: (0..relays)
                .map(|i| OutageWindow {
                    node: NodeId(i),
                    start,
                    end,
                })
                .collect(),
            ..Default::default()
        }
    }

    /// Preset: a bootstrap storm — 95 % of the population starts
    /// offline and floods back in as the (short) downtimes elapse, so
    /// nearly everyone hits the bootstrap relays at once. Harsher than
    /// [`DynamicsPlan::flash_crowd`] and aimed squarely at the
    /// membership overlay's join path.
    pub fn bootstrap_storm(mean_session: SimDuration, mean_downtime: SimDuration) -> Self {
        DynamicsPlan {
            churn: Some(ChurnConfig {
                mean_session,
                mean_downtime,
                whitewash_probability: 0.0,
                crash_fraction: 0.3,
            }),
            initial_offline: 0.95,
            ..Default::default()
        }
    }

    /// Preset: a whitewash economy — sessions end often and 80 % of
    /// re-joins come back under a fresh identity, shedding history.
    pub fn whitewash_attack(mean_session: SimDuration, mean_downtime: SimDuration) -> Self {
        DynamicsPlan {
            churn: Some(ChurnConfig {
                mean_session,
                mean_downtime,
                whitewash_probability: 0.8,
                crash_fraction: 0.5,
            }),
            ..Default::default()
        }
    }
}

/// A dynamics transition the runtime applied, tagged with the *slot*
/// (the stable network position / dense index) it happened to.
///
/// Identities and slots coincide until the first whitewash; afterwards
/// [`DynamicsRuntime::identity`] maps a slot to the identity currently
/// bound to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicsEvent {
    /// The slot went offline gracefully.
    Leave {
        /// The affected network slot.
        slot: NodeId,
    },
    /// The slot went offline abruptly.
    Crash {
        /// The affected network slot.
        slot: NodeId,
    },
    /// The slot came back under the same identity.
    Rejoin {
        /// The affected network slot.
        slot: NodeId,
    },
    /// The slot came back under a fresh identity.
    Whitewash {
        /// The affected network slot.
        slot: NodeId,
        /// The identity it abandoned.
        old: NodeId,
        /// The freshly allocated identity.
        new: NodeId,
    },
    /// A partition window began (loss model swapped in).
    PartitionStart {
        /// Index into [`DynamicsPlan::partitions`].
        window: usize,
    },
    /// A partition window healed (displaced loss model restored).
    PartitionHeal {
        /// Index into [`DynamicsPlan::partitions`].
        window: usize,
    },
}

/// Executes a [`DynamicsPlan`] on the simulation clock.
///
/// See the [module docs](self) for the attach / advance / drain
/// protocol.
#[derive(Debug)]
pub struct DynamicsRuntime {
    plan: DynamicsPlan,
    n: usize,
    churn: Option<ChurnProcess>,
    lifecycle: NodeLifecycle,
    /// slot → identity currently bound to it.
    identity: Vec<NodeId>,
    next_identity: u32,
    /// Per-slot next transition time ([`SimTime::MAX`] = none).
    next_at: Vec<SimTime>,
    /// Per-slot pending transition, sampled when it was scheduled.
    pending: Vec<Option<ChurnEvent>>,
    /// Min-heap of (time, seq, slot); stale entries (time no longer
    /// matching `next_at[slot]`) are skipped on pop.
    schedule: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    schedule_seq: u64,
    online: Vec<bool>,
    online_count: usize,
    /// Index of the next partition window not yet healed.
    window_cursor: usize,
    /// Whether `partitions[window_cursor]` is currently active.
    in_window: bool,
    /// Flattened outage boundaries `(time, slot, goes_down)`, sorted
    /// by time (stable on ties), consumed through `outage_cursor`.
    outage_steps: Vec<(SimTime, usize, bool)>,
    outage_cursor: usize,
    /// Group map of the active window (kept for detached consumers).
    active_map: Option<GroupMap>,
    /// Loss model displaced by the active window (network mode only).
    displaced_loss: Option<Box<dyn crate::latency::LossModel>>,
    events: Vec<(SimTime, DynamicsEvent)>,
}

impl DynamicsRuntime {
    /// Builds the runtime for an `n`-slot population. The schedule is
    /// measured from [`SimTime::ZERO`]; every initial transition is
    /// sampled here, so two runtimes with the same `(plan, n, rng)` are
    /// identical.
    ///
    /// # Errors
    ///
    /// Returns the plan's validation error, if any.
    pub fn new(plan: DynamicsPlan, n: usize, mut rng: SimRng) -> Result<Self, String> {
        plan.validate()?;
        let mut online = vec![true; n];
        if plan.initial_offline > 0.0 {
            for slot in online.iter_mut() {
                if rng.gen_bool(plan.initial_offline) {
                    *slot = false;
                }
            }
        }
        let online_count = online.iter().filter(|&&o| o).count();
        let mut lifecycle = NodeLifecycle::new();
        let mut churn = plan.churn.clone().map(|c| ChurnProcess::new(c, rng));
        let mut next_at = vec![SimTime::MAX; n];
        let mut pending: Vec<Option<ChurnEvent>> = vec![None; n];
        let mut schedule = BinaryHeap::new();
        let mut schedule_seq = 0u64;
        // tsn-lint: allow(no-unwrap, "plan validation bounds the population well below u32::MAX before a runtime exists")
        let mut next_identity = u32::try_from(n).expect("population fits u32");
        for slot in 0..n {
            let id = NodeId::from_index(slot);
            lifecycle.register(id);
            if !online[slot] {
                lifecycle.apply(ChurnEvent::Leave(id));
            }
            if let Some(churn) = churn.as_mut() {
                let (delay, event) =
                    churn.next_transition(id, online[slot], || allocate(&mut next_identity));
                let at = SimTime::ZERO + delay;
                if at < SimTime::MAX {
                    next_at[slot] = at;
                    pending[slot] = Some(event);
                    schedule.push(Reverse((at, schedule_seq, slot)));
                    schedule_seq += 1;
                }
            }
        }
        let mut outage_steps: Vec<(SimTime, usize, bool)> = Vec::new();
        for outage in &plan.outages {
            if outage.node.index() >= n {
                continue; // beyond this population: inert by design
            }
            outage_steps.push((outage.start, outage.node.index(), true));
            if outage.end < SimTime::MAX {
                outage_steps.push((outage.end, outage.node.index(), false));
            }
        }
        outage_steps.sort_by_key(|&(at, _, _)| at);
        Ok(DynamicsRuntime {
            plan,
            n,
            churn,
            lifecycle,
            identity: (0..n).map(NodeId::from_index).collect(),
            next_identity,
            next_at,
            pending,
            schedule,
            schedule_seq,
            online,
            online_count,
            window_cursor: 0,
            in_window: false,
            outage_steps,
            outage_cursor: 0,
            active_map: None,
            displaced_loss: None,
            events: Vec::new(),
        })
    }

    /// The plan being executed.
    pub fn plan(&self) -> &DynamicsPlan {
        &self.plan
    }

    /// Applies the *current* abstract state to a network: kills the
    /// offline slots, installs the regional latency model, and — if a
    /// partition window is already active (the runtime may have run
    /// detached before attaching) — swaps its loss model in. The round
    /// driver calls this once when the runtime is attached.
    ///
    /// # Panics
    ///
    /// Panics if the network's node count differs from the runtime's.
    pub fn install(&mut self, network: &mut Network) {
        assert_eq!(
            network.node_count(),
            self.n,
            "network and dynamics plan must agree on node count"
        );
        for slot in 0..self.n {
            if !self.online[slot] {
                network.set_alive(NodeId::from_index(slot), false);
            }
        }
        if let Some(regions) = &self.plan.regions {
            let map = GroupMap::contiguous(self.n, regions.groups);
            network.set_latency(Box::new(RegionalLatency::new(
                map,
                regions.intra,
                regions.inter,
            )));
        }
        if self.in_window && self.displaced_loss.is_none() {
            let spec = &self.plan.partitions[self.window_cursor];
            let map = self
                .active_map
                .clone()
                // tsn-lint: allow(no-unwrap, "window activation builds the map before in_window is ever set; they change together")
                .expect("an active window always has a map");
            self.displaced_loss = Some(network.set_loss(Box::new(PartitionedLoss::new(
                map,
                spec.cross_loss,
                spec.intra_loss,
            ))));
        }
    }

    /// Executes every transition scheduled up to `to` against the
    /// network, interleaved with message delivery: the network clock is
    /// advanced to each transition's exact time before it is applied, so
    /// a message due before a crash is delivered and one due after it
    /// dead-letters. The caller advances the network to `to` afterwards
    /// (the driver's normal round delivery).
    pub fn advance(&mut self, network: &mut Network, to: SimTime) {
        self.advance_inner(Some(network), to);
    }

    /// Executes the same schedule without a network: online flags,
    /// identities and the active-partition state move, but nothing is
    /// killed and no model is swapped. For engines that have no
    /// transport (the abstract scenario loop).
    pub fn advance_detached(&mut self, to: SimTime) {
        self.advance_inner(None, to);
    }

    fn advance_inner(&mut self, mut network: Option<&mut Network>, to: SimTime) {
        loop {
            let boundary = self.next_boundary().map(|(t, _)| t);
            let outage = self
                .outage_steps
                .get(self.outage_cursor)
                .map(|&(t, _, _)| t);
            let transition = self.schedule.peek().map(|Reverse((t, _, _))| *t);
            // Pick the earliest due step. Tie order: partition
            // boundary, then outage, then churn transition — so a heal
            // at time t frees traffic before anything revives at t,
            // and a targeted outage overrides a same-instant churn
            // event.
            let mut best: Option<(SimTime, u8)> = None;
            for (candidate, kind) in [(boundary, 0u8), (outage, 1), (transition, 2)] {
                if let Some(t) = candidate {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, kind));
                    }
                }
            }
            let Some((at, kind)) = best else {
                break;
            };
            // `SimTime::MAX` is the unreachable "infinite horizon":
            // steps saturated onto it never fire (this also guarantees
            // termination when `to` is the horizon itself).
            if at > to || at == SimTime::MAX {
                break;
            }
            if let Some(network) = network.as_deref_mut() {
                network.advance_to(at);
            }
            match kind {
                0 => self.apply_boundary(network.as_deref_mut(), at),
                1 => self.apply_outage(network.as_deref_mut(), at),
                _ => self.apply_transition(network.as_deref_mut(), at),
            }
        }
    }

    /// Applies the next outage boundary: a targeted crash at a window
    /// start, a rejoin at its end. When churn already put the slot in
    /// the target state the step is a silent no-op (the last transition
    /// wins, matching how the network mirrors per-slot state).
    fn apply_outage(&mut self, network: Option<&mut Network>, at: SimTime) {
        let (_, slot, goes_down) = self.outage_steps[self.outage_cursor];
        self.outage_cursor += 1;
        let now_online = !goes_down;
        if self.online[slot] == now_online {
            return;
        }
        let identity = self.identity[slot];
        let event = if goes_down {
            ChurnEvent::Crash(identity)
        } else {
            ChurnEvent::Rejoin(identity)
        };
        self.lifecycle.apply(event);
        self.online[slot] = now_online;
        if now_online {
            self.online_count += 1;
        } else {
            self.online_count -= 1;
        }
        let slot_id = NodeId::from_index(slot);
        if let Some(network) = network {
            network.set_alive(slot_id, now_online);
        }
        let public = if goes_down {
            DynamicsEvent::Crash { slot: slot_id }
        } else {
            DynamicsEvent::Rejoin { slot: slot_id }
        };
        self.events.push((at, public));
    }

    /// The next partition start/heal time, if any. The bool is `true`
    /// for a start.
    fn next_boundary(&self) -> Option<(SimTime, bool)> {
        if self.in_window {
            Some((self.plan.partitions[self.window_cursor].end, false))
        } else {
            self.plan
                .partitions
                .get(self.window_cursor)
                .map(|w| (w.start, true))
        }
    }

    fn apply_boundary(&mut self, network: Option<&mut Network>, at: SimTime) {
        let window = self.window_cursor;
        if self.in_window {
            if let Some(network) = network {
                // `displaced_loss` can only be absent if the window
                // started while running detached and no install
                // happened since — nothing to restore then.
                if let Some(restored) = self.displaced_loss.take() {
                    network.set_loss(restored);
                }
            }
            self.in_window = false;
            self.active_map = None;
            self.window_cursor += 1;
            self.events
                .push((at, DynamicsEvent::PartitionHeal { window }));
        } else {
            let spec = &self.plan.partitions[window];
            let map = GroupMap::contiguous(self.n, spec.groups);
            if let Some(network) = network {
                let displaced = network.set_loss(Box::new(PartitionedLoss::new(
                    map.clone(),
                    spec.cross_loss,
                    spec.intra_loss,
                )));
                self.displaced_loss = Some(displaced);
            }
            self.active_map = Some(map);
            self.in_window = true;
            self.events
                .push((at, DynamicsEvent::PartitionStart { window }));
        }
    }

    fn apply_transition(&mut self, network: Option<&mut Network>, at: SimTime) {
        // Pop the heap entry that triggered this call, skipping stale
        // ones (a slot rescheduled since the entry was pushed).
        let slot = loop {
            let Some(Reverse((t, _, slot))) = self.schedule.pop() else {
                return;
            };
            if self.next_at[slot] == t {
                break slot;
            }
        };
        let event = self.pending[slot]
            .take()
            // tsn-lint: allow(no-unwrap, "heap entries and pending events are inserted together; the popped slot still holds its event")
            .expect("scheduled slot has a pending event");
        self.lifecycle.apply(event);
        let slot_id = NodeId::from_index(slot);
        let now_online = event.online_identity().is_some();
        if now_online != self.online[slot] {
            self.online[slot] = now_online;
            if now_online {
                self.online_count += 1;
            } else {
                self.online_count -= 1;
            }
            if let Some(network) = network {
                network.set_alive(slot_id, now_online);
            }
        }
        let public = match event {
            ChurnEvent::Leave(_) => DynamicsEvent::Leave { slot: slot_id },
            ChurnEvent::Crash(_) => DynamicsEvent::Crash { slot: slot_id },
            ChurnEvent::Rejoin(_) => DynamicsEvent::Rejoin { slot: slot_id },
            ChurnEvent::Whitewash(old, new) => {
                self.identity[slot] = new;
                DynamicsEvent::Whitewash {
                    slot: slot_id,
                    old,
                    new,
                }
            }
        };
        self.events.push((at, public));
        // Schedule the slot's next transition; a time saturated onto
        // the infinite horizon never fires.
        let churn = self
            .churn
            .as_mut()
            // tsn-lint: allow(no-unwrap, "transition times are only scheduled when a churn model is configured")
            .expect("transitions only exist with churn");
        let next_identity = &mut self.next_identity;
        let (delay, next_event) =
            churn.next_transition(self.identity[slot], now_online, || allocate(next_identity));
        let next_time = at + delay;
        self.next_at[slot] = next_time;
        if next_time < SimTime::MAX {
            self.pending[slot] = Some(next_event);
            self.schedule
                .push(Reverse((next_time, self.schedule_seq, slot)));
            self.schedule_seq += 1;
        }
    }

    /// Fraction of slots currently online.
    pub fn availability(&self) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        self.online_count as f64 / self.n as f64
    }

    /// Whether the given slot is currently online.
    pub fn online(&self, slot: NodeId) -> bool {
        self.online[slot.index()]
    }

    /// The identity currently bound to a slot.
    pub fn identity(&self, slot: NodeId) -> NodeId {
        self.identity[slot.index()]
    }

    /// The slot → identity map.
    pub fn identities(&self) -> &[NodeId] {
        &self.identity
    }

    /// Identities ever allocated (slots plus whitewash reincarnations).
    pub fn identity_count(&self) -> usize {
        self.next_identity as usize
    }

    /// The whitewash genealogy and per-identity online state.
    pub fn lifecycle(&self) -> &NodeLifecycle {
        &self.lifecycle
    }

    /// Whether a partition window is currently active.
    pub fn partition_active(&self) -> bool {
        self.in_window
    }

    /// The group map of the active partition window, if one is active.
    pub fn active_group_map(&self) -> Option<&GroupMap> {
        self.active_map.as_ref()
    }

    /// Partition health in `[0, 1]`: the probability a uniformly random
    /// node pair can exchange messages group-wise — 1.0 outside any
    /// window, [`GroupMap::connectivity`] inside one.
    pub fn partition_health(&self) -> f64 {
        self.active_map.as_ref().map_or(1.0, GroupMap::connectivity)
    }

    /// The events applied since the last clear/drain, in time order.
    /// The allocation-free read path: borrow, react, then
    /// [`DynamicsRuntime::clear_events`] (or let the round driver clear
    /// them at its next round).
    pub fn events(&self) -> &[(SimTime, DynamicsEvent)] {
        &self.events
    }

    /// Clears the recorded events, keeping the buffer's capacity.
    pub fn clear_events(&mut self) {
        self.events.clear();
    }

    /// Drains the events applied since the last clear/drain, in time
    /// order. Prefer [`DynamicsRuntime::events`] +
    /// [`DynamicsRuntime::clear_events`] on hot paths — draining hands
    /// the buffer (and its capacity) to the caller.
    pub fn take_events(&mut self) -> Vec<(SimTime, DynamicsEvent)> {
        std::mem::take(&mut self.events)
    }
}

fn allocate(next_identity: &mut u32) -> NodeId {
    let id = NodeId(*next_identity);
    *next_identity += 1;
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;

    fn churny_plan() -> DynamicsPlan {
        DynamicsPlan {
            churn: Some(ChurnConfig {
                mean_session: SimDuration::from_secs(2),
                mean_downtime: SimDuration::from_secs(1),
                whitewash_probability: 0.0,
                crash_fraction: 0.5,
            }),
            ..Default::default()
        }
    }

    fn network(n: usize) -> Network {
        let mut net = Network::new(NetworkConfig::default(), SimRng::seed_from_u64(0));
        for _ in 0..n {
            net.add_node();
        }
        net
    }

    #[test]
    fn static_plan_is_a_no_op() {
        let plan = DynamicsPlan::default();
        assert!(plan.is_static());
        let mut runtime = DynamicsRuntime::new(plan, 8, SimRng::seed_from_u64(1)).unwrap();
        let mut net = network(8);
        runtime.install(&mut net);
        runtime.advance(&mut net, SimTime::from_secs(100));
        assert_eq!(runtime.availability(), 1.0);
        assert_eq!(runtime.partition_health(), 1.0);
        assert!(runtime.take_events().is_empty());
        assert!((0..8).all(|i| net.is_alive(NodeId(i))));
    }

    #[test]
    fn plan_validation_rejects_bad_fields() {
        let plan = DynamicsPlan {
            initial_offline: 0.5,
            ..Default::default()
        };
        assert!(plan.validate().is_err(), "initial_offline without churn");
        let plan = DynamicsPlan {
            partitions: vec![PartitionWindow::full_split(
                SimTime::from_secs(1),
                SimTime::from_secs(1),
                2,
            )],
            ..Default::default()
        };
        assert!(plan.validate().is_err(), "empty window");
        let plan = DynamicsPlan {
            partitions: vec![
                PartitionWindow::full_split(SimTime::from_secs(1), SimTime::from_secs(5), 2),
                PartitionWindow::full_split(SimTime::from_secs(4), SimTime::from_secs(6), 2),
            ],
            ..Default::default()
        };
        assert!(plan.validate().is_err(), "overlapping windows");
        assert!(
            DynamicsPlan::split_then_heal(SimTime::ZERO, SimTime::from_secs(1))
                .validate()
                .is_ok()
        );
    }

    #[test]
    fn churn_kills_and_revives_network_nodes() {
        let n = 20;
        let mut runtime = DynamicsRuntime::new(churny_plan(), n, SimRng::seed_from_u64(3)).unwrap();
        let mut net = network(n);
        runtime.install(&mut net);
        let mut saw_offline = false;
        let mut saw_rejoin = false;
        // The network mirrors the *last* event per slot in each window
        // (a leave+rejoin inside one window nets out to alive).
        let mut expected = vec![true; n];
        for round in 1..=200u64 {
            runtime.advance(&mut net, SimTime::from_millis(round * 100));
            for (_, event) in runtime.take_events() {
                match event {
                    DynamicsEvent::Leave { slot } | DynamicsEvent::Crash { slot } => {
                        saw_offline = true;
                        expected[slot.index()] = false;
                    }
                    DynamicsEvent::Rejoin { slot } => {
                        saw_rejoin = true;
                        expected[slot.index()] = true;
                    }
                    _ => {}
                }
            }
            let mut alive = 0usize;
            for (i, &want) in expected.iter().enumerate() {
                let id = NodeId::from_index(i);
                assert_eq!(net.is_alive(id), want, "slot {i} round {round}");
                assert_eq!(runtime.online(id), want, "slot {i} round {round}");
                alive += usize::from(want);
            }
            assert_eq!(alive as f64 / n as f64, runtime.availability());
        }
        assert!(saw_offline && saw_rejoin, "20s of 2s-sessions must churn");
    }

    #[test]
    fn whitewash_allocates_fresh_identities_with_genealogy() {
        let n = 10;
        let plan = DynamicsPlan::whitewash_attack(
            SimDuration::from_millis(500),
            SimDuration::from_millis(200),
        );
        let mut runtime = DynamicsRuntime::new(plan, n, SimRng::seed_from_u64(4)).unwrap();
        let mut net = network(n);
        runtime.install(&mut net);
        runtime.advance(&mut net, SimTime::from_secs(20));
        let events = runtime.take_events();
        let whitewashes: Vec<_> = events
            .iter()
            .filter_map(|(_, e)| match *e {
                DynamicsEvent::Whitewash { slot, old, new } => Some((slot, old, new)),
                _ => None,
            })
            .collect();
        assert!(
            !whitewashes.is_empty(),
            "80% whitewash probability over 20s"
        );
        for &(slot, old, new) in &whitewashes {
            assert!(new.index() >= n, "fresh identities sit beyond the slots");
            assert_eq!(runtime.lifecycle().whitewashed_from(new), Some(old));
            assert!(
                runtime.lifecycle().root_identity(new).index() < n,
                "chains root at an original slot"
            );
            let _ = slot;
        }
        // Every distinct new identity is allocated exactly once.
        let mut fresh: Vec<u32> = whitewashes.iter().map(|&(_, _, new)| new.0).collect();
        fresh.sort_unstable();
        fresh.dedup();
        assert_eq!(
            fresh.len(),
            whitewashes.len(),
            "identities are never reused"
        );
        // Identities are allocated when the return is *scheduled*, so
        // the count covers fired whitewashes plus any still pending.
        assert!(runtime.identity_count() >= n + fresh.len());
    }

    #[test]
    fn partition_window_swaps_and_restores_the_loss_model() {
        let n = 8;
        let plan = DynamicsPlan::split_then_heal(SimTime::from_secs(1), SimTime::from_secs(2));
        let mut runtime = DynamicsRuntime::new(plan, n, SimRng::seed_from_u64(5)).unwrap();
        let mut net = network(n);
        runtime.install(&mut net);

        // Before the window: cross-group traffic flows.
        runtime.advance(&mut net, SimTime::from_millis(500));
        net.advance_to(SimTime::from_millis(500));
        let (_, outcome) = net.send(NodeId(0), NodeId(7), "pre".into());
        assert!(matches!(
            outcome,
            crate::network::DeliveryOutcome::Scheduled(_)
        ));
        assert_eq!(runtime.partition_health(), 1.0);

        // Inside: cross-group traffic is lost, intra-group flows.
        runtime.advance(&mut net, SimTime::from_millis(1500));
        net.advance_to(SimTime::from_millis(1500));
        assert!(runtime.partition_active());
        assert_eq!(runtime.partition_health(), 0.5);
        let (_, outcome) = net.send(NodeId(0), NodeId(7), "cross".into());
        assert_eq!(outcome, crate::network::DeliveryOutcome::Lost);
        let (_, outcome) = net.send(NodeId(0), NodeId(1), "local".into());
        assert!(matches!(
            outcome,
            crate::network::DeliveryOutcome::Scheduled(_)
        ));

        // After the heal: the displaced model is back.
        runtime.advance(&mut net, SimTime::from_millis(2500));
        net.advance_to(SimTime::from_millis(2500));
        assert!(!runtime.partition_active());
        assert_eq!(runtime.partition_health(), 1.0);
        let (_, outcome) = net.send(NodeId(0), NodeId(7), "post".into());
        assert!(matches!(
            outcome,
            crate::network::DeliveryOutcome::Scheduled(_)
        ));
        let starts = runtime
            .take_events()
            .iter()
            .filter(|(_, e)| matches!(e, DynamicsEvent::PartitionStart { .. }))
            .count();
        assert_eq!(starts, 1);
    }

    #[test]
    fn attaching_mid_window_after_detached_execution_is_sound() {
        // A runtime may run detached first (the scenario engine) and
        // only later be attached to a network. If a partition window
        // opened while detached, install() must swap the loss model in,
        // and the later heal must restore cleanly instead of panicking.
        let n = 8;
        let plan = DynamicsPlan::split_then_heal(SimTime::from_secs(1), SimTime::from_secs(3));
        let mut runtime = DynamicsRuntime::new(plan, n, SimRng::seed_from_u64(11)).unwrap();
        runtime.advance_detached(SimTime::from_secs(2));
        assert!(runtime.partition_active(), "the window opened detached");

        let mut net = network(n);
        net.advance_to(SimTime::from_secs(2));
        runtime.install(&mut net);
        // The partition loss model is live on the network now.
        let (_, outcome) = net.send(NodeId(0), NodeId(7), "cross".into());
        assert_eq!(outcome, crate::network::DeliveryOutcome::Lost);

        // The heal restores the displaced model without panicking.
        runtime.advance(&mut net, SimTime::from_secs(4));
        net.advance_to(SimTime::from_secs(4));
        assert!(!runtime.partition_active());
        let (_, outcome) = net.send(NodeId(0), NodeId(7), "post".into());
        assert!(matches!(
            outcome,
            crate::network::DeliveryOutcome::Scheduled(_)
        ));

        // Fully-detached windows (never installed) heal without a
        // network too — nothing to restore, nothing to panic on.
        let plan = DynamicsPlan::split_then_heal(SimTime::from_secs(1), SimTime::from_secs(3));
        let mut detached = DynamicsRuntime::new(plan, n, SimRng::seed_from_u64(12)).unwrap();
        detached.advance_detached(SimTime::from_secs(2));
        let mut late_net = network(n);
        late_net.advance_to(SimTime::from_secs(2));
        detached.install(&mut late_net);
        detached.advance(&mut late_net, SimTime::from_secs(10));
        assert!(!detached.partition_active());
    }

    #[test]
    fn regions_install_regional_latency() {
        let n = 4;
        let plan =
            DynamicsPlan::wan_regions(2, SimDuration::from_millis(5), SimDuration::from_millis(80));
        let mut runtime = DynamicsRuntime::new(plan, n, SimRng::seed_from_u64(6)).unwrap();
        let mut net = network(n);
        runtime.install(&mut net);
        let (_, local) = net.send(NodeId(0), NodeId(1), "local".into());
        let (_, remote) = net.send(NodeId(0), NodeId(3), "remote".into());
        assert_eq!(
            local,
            crate::network::DeliveryOutcome::Scheduled(SimTime::from_millis(5))
        );
        assert_eq!(
            remote,
            crate::network::DeliveryOutcome::Scheduled(SimTime::from_millis(80))
        );
    }

    #[test]
    fn flash_crowd_starts_sparse_and_fills_up() {
        let n = 100;
        let plan =
            DynamicsPlan::flash_crowd(SimDuration::from_secs(3600), SimDuration::from_secs(1));
        let mut runtime = DynamicsRuntime::new(plan, n, SimRng::seed_from_u64(7)).unwrap();
        let start = runtime.availability();
        assert!(start < 0.5, "three quarters start offline: {start}");
        runtime.advance_detached(SimTime::from_secs(10));
        let after = runtime.availability();
        assert!(after > 0.9, "the crowd joined within seconds: {after}");
    }

    #[test]
    fn detached_and_networked_execution_agree() {
        let n = 16;
        let plan = churny_plan();
        let mut networked =
            DynamicsRuntime::new(plan.clone(), n, SimRng::seed_from_u64(8)).unwrap();
        let mut detached = DynamicsRuntime::new(plan, n, SimRng::seed_from_u64(8)).unwrap();
        let mut net = network(n);
        networked.install(&mut net);
        for step in 1..=50u64 {
            let to = SimTime::from_millis(step * 200);
            networked.advance(&mut net, to);
            detached.advance_detached(to);
            assert_eq!(
                networked.take_events(),
                detached.take_events(),
                "step {step}"
            );
            for slot in 0..n {
                let id = NodeId::from_index(slot);
                assert_eq!(networked.online(id), detached.online(id));
                assert_eq!(net.is_alive(id), networked.online(id));
            }
        }
    }

    #[test]
    fn runtime_is_deterministic_given_seed() {
        let run = || {
            let plan = DynamicsPlan::whitewash_attack(
                SimDuration::from_secs(1),
                SimDuration::from_millis(300),
            );
            let mut runtime = DynamicsRuntime::new(plan, 12, SimRng::seed_from_u64(9)).unwrap();
            runtime.advance_detached(SimTime::from_secs(30));
            runtime.take_events()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn relay_outage_kills_and_revives_exactly_the_relays() {
        let n = 12;
        let plan = DynamicsPlan::relay_outage(3, SimTime::from_secs(1), SimTime::from_secs(2));
        assert!(plan.validate().is_ok());
        let mut runtime = DynamicsRuntime::new(plan, n, SimRng::seed_from_u64(21)).unwrap();
        let mut net = network(n);
        runtime.install(&mut net);

        runtime.advance(&mut net, SimTime::from_millis(500));
        assert_eq!(runtime.availability(), 1.0);

        runtime.advance(&mut net, SimTime::from_millis(1500));
        for slot in 0..n {
            let id = NodeId::from_index(slot);
            assert_eq!(runtime.online(id), slot >= 3, "slot {slot} mid-outage");
            assert_eq!(net.is_alive(id), slot >= 3);
        }

        runtime.advance(&mut net, SimTime::from_millis(2500));
        assert_eq!(runtime.availability(), 1.0);
        let events = runtime.take_events();
        let crashes = events
            .iter()
            .filter(|(_, e)| matches!(e, DynamicsEvent::Crash { .. }))
            .count();
        let rejoins = events
            .iter()
            .filter(|(_, e)| matches!(e, DynamicsEvent::Rejoin { .. }))
            .count();
        assert_eq!((crashes, rejoins), (3, 3));
    }

    #[test]
    fn outage_validation_rejects_overlap_and_empty_windows() {
        let plan = DynamicsPlan {
            outages: vec![OutageWindow {
                node: NodeId(0),
                start: SimTime::from_secs(2),
                end: SimTime::from_secs(2),
            }],
            ..Default::default()
        };
        assert!(plan.validate().is_err(), "empty outage window");
        let plan = DynamicsPlan {
            outages: vec![
                OutageWindow {
                    node: NodeId(0),
                    start: SimTime::from_secs(1),
                    end: SimTime::from_secs(3),
                },
                OutageWindow {
                    node: NodeId(0),
                    start: SimTime::from_secs(2),
                    end: SimTime::from_secs(4),
                },
            ],
            ..Default::default()
        };
        assert!(plan.validate().is_err(), "same-node overlap");
        let plan = DynamicsPlan {
            outages: vec![
                OutageWindow {
                    node: NodeId(0),
                    start: SimTime::from_secs(1),
                    end: SimTime::from_secs(3),
                },
                OutageWindow {
                    node: NodeId(1),
                    start: SimTime::from_secs(2),
                    end: SimTime::from_secs(4),
                },
            ],
            ..Default::default()
        };
        assert!(plan.validate().is_ok(), "different nodes may overlap");
    }

    #[test]
    fn bootstrap_storm_floods_in_through_short_downtimes() {
        let plan =
            DynamicsPlan::bootstrap_storm(SimDuration::from_secs(3600), SimDuration::from_secs(1));
        assert!(plan.validate().is_ok());
        assert!(!plan.is_static());
        let mut runtime = DynamicsRuntime::new(plan, 200, SimRng::seed_from_u64(22)).unwrap();
        assert!(runtime.availability() < 0.2, "95% start offline");
        runtime.advance_detached(SimTime::from_secs(10));
        assert!(runtime.availability() > 0.9, "the storm joined in seconds");
    }

    #[test]
    fn schedule_survives_the_infinite_horizon() {
        // Advancing to SimTime::MAX exercises the saturating time
        // arithmetic: transition times pushed past the horizon clamp
        // instead of wrapping, so the loop terminates.
        let mut runtime = DynamicsRuntime::new(
            DynamicsPlan::split_then_heal(SimTime::from_secs(1), SimTime::MAX),
            4,
            SimRng::seed_from_u64(10),
        )
        .unwrap();
        runtime.advance_detached(SimTime::MAX);
        assert!(runtime.partition_active(), "a MAX-end window never heals");
    }
}
