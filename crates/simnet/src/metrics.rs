//! Lightweight metric primitives used across the workspace.
//!
//! The simulator and every experiment binary report through these types, so
//! EXPERIMENTS.md rows come from one consistent implementation (means,
//! quantiles, counters) rather than ad-hoc arithmetic in each binary.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A streaming histogram of `f64` samples.
///
/// Keeps every sample (experiments here are small enough); provides mean,
/// variance, and exact quantiles. Samples must be finite.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample. Non-finite samples are ignored (and counted
    /// nowhere); experiment code treats NaN as "no observation".
    pub fn record(&mut self, sample: f64) {
        if sample.is_finite() {
            self.samples.push(sample);
            self.sorted = false;
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Exact quantile by nearest-rank, `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Immutable view of the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A named bag of counters and histograms.
///
/// Keys are `&'static str` by convention (`"msg.sent"`, `"interaction.ok"`).
#[derive(Debug, Clone, Default)]
pub struct MetricSet {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the named counter, creating it on first use.
    pub fn incr(&mut self, name: &str) {
        self.counters.entry(name.to_owned()).or_default().incr();
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        self.counters.entry(name.to_owned()).or_default().add(n);
    }

    /// Records a sample in the named histogram.
    pub fn record(&mut self, name: &str, sample: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(sample);
    }

    /// Value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.value())
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mutable access (for quantiles, which sort lazily).
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// Iterates over counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.value()))
    }

    /// Iterates over histogram names in order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Merges another metric set into this one (counters add, samples
    /// concatenate). Used to aggregate per-run metrics across Monte-Carlo
    /// repetitions.
    pub fn merge(&mut self, other: &MetricSet) {
        for (k, v) in &other.counters {
            self.counters.entry(k.clone()).or_default().add(v.value());
        }
        for (k, h) in &other.histograms {
            let dst = self.histograms.entry(k.clone()).or_default();
            for &s in h.samples() {
                dst.record(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            h.record(x);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        let sd = h.std_dev().unwrap();
        assert!((sd - 1.118).abs() < 1e-3);
    }

    #[test]
    fn histogram_quantiles_nearest_rank() {
        let mut h = Histogram::new();
        for x in 1..=100 {
            h.record(x as f64);
        }
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.std_dev(), None);
    }

    #[test]
    fn empty_histogram_quantile_is_none() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_out_of_range_panics() {
        let mut h = Histogram::new();
        h.record(1.0);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn metric_set_counters_and_histograms() {
        let mut m = MetricSet::new();
        m.incr("a");
        m.incr("a");
        m.add("b", 10);
        m.record("lat", 1.5);
        assert_eq!(m.counter("a"), 2);
        assert_eq!(m.counter("b"), 10);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.histogram("lat").unwrap().len(), 1);
        assert!(m.histogram("absent").is_none());
    }

    #[test]
    fn metric_set_merge_adds() {
        let mut a = MetricSet::new();
        a.incr("x");
        a.record("h", 1.0);
        let mut b = MetricSet::new();
        b.add("x", 2);
        b.record("h", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.histogram("h").unwrap().len(), 2);
        assert_eq!(a.histogram_mut("h").unwrap().quantile(1.0), Some(3.0));
    }

    #[test]
    fn metric_set_iterates_in_name_order() {
        let mut m = MetricSet::new();
        m.incr("zeta");
        m.incr("alpha");
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
