//! Virtual time for the discrete-event simulator.
//!
//! Time is counted in integer **microseconds** since the start of the
//! simulation. Integer time keeps event ordering exact (no floating-point
//! tie ambiguity) which is a prerequisite for deterministic replay.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
///
/// ```
/// use tsn_simnet::{SimTime, SimDuration};
/// let t = SimTime::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(t.as_micros(), 3_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds a time from whole milliseconds, saturating at the
    /// [`SimTime::MAX`] horizon instead of wrapping.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000))
    }

    /// Builds a time from whole seconds, saturating at the
    /// [`SimTime::MAX`] horizon instead of wrapping.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000))
    }

    /// This time in microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time in (truncated) milliseconds.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This time in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is later than `self` (clock skew
    /// cannot happen inside one simulation, but callers comparing times
    /// from different runs should not panic).
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span; adding it to any time saturates
    /// at the [`SimTime::MAX`] horizon.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds, saturating instead of
    /// wrapping.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000))
    }

    /// Builds a duration from whole seconds, saturating instead of
    /// wrapping.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000))
    }

    /// Builds a duration from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// The duration in microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scales the duration by a non-negative factor, rounding to
    /// microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    /// Saturating: [`SimTime::MAX`] is the "infinite horizon", so any
    /// time at (or pushed past) the horizon stays there instead of
    /// wrapping in release builds or panicking in debug builds.
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    /// Saturating, mirroring `SimTime + SimDuration`: an effectively
    /// infinite span stays infinite instead of wrapping.
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_micros(2).as_micros(), 2);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        // saturating: earlier.duration_since(later) == 0
        assert_eq!(SimTime::ZERO.duration_since(t), SimDuration::ZERO);
    }

    #[test]
    fn fractional_seconds_roundtrip() {
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d.as_micros(), 250_000);
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_scales_and_rounds() {
        let d = SimDuration::from_micros(3).mul_f64(1.5);
        assert_eq!(d.as_micros(), 5); // 4.5 rounds to 5 (round-half-up away from zero)
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn arithmetic_saturates_at_the_horizon() {
        // `+` must not wrap (release) or panic (debug) at SimTime::MAX.
        assert_eq!(SimTime::MAX + SimDuration::from_millis(1), SimTime::MAX);
        assert_eq!(SimTime::MAX + SimDuration::MAX, SimTime::MAX);
        assert_eq!(SimTime::ZERO + SimDuration::MAX, SimTime::MAX);
        let near = SimTime::from_micros(u64::MAX - 1);
        assert_eq!(near + SimDuration::from_micros(5), SimTime::MAX);
        let mut t = near;
        t += SimDuration::MAX;
        assert_eq!(t, SimTime::MAX);
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
    }

    #[test]
    fn constructors_saturate_instead_of_wrapping() {
        // u64::MAX ms * 1000 would wrap; the constructors clamp to the
        // horizon so "infinite" inputs stay infinite.
        assert_eq!(SimTime::from_millis(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_secs(u64::MAX), SimTime::MAX);
        assert_eq!(SimDuration::from_millis(u64::MAX), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs(u64::MAX), SimDuration::MAX);
        // In-range values are unaffected.
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
    }
}
