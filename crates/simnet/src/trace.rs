//! Bounded trace log for debugging and experiment post-mortems.

use crate::time::SimTime;
use crate::NodeId;
use std::collections::VecDeque;

/// The category of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A message was sent.
    MessageSent,
    /// A message was delivered.
    MessageDelivered,
    /// A node lifecycle change.
    Lifecycle,
    /// An interaction between participants (application-level).
    Interaction,
    /// A privacy-relevant disclosure.
    Disclosure,
    /// Anything else.
    Custom,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Category.
    pub kind: TraceKind,
    /// Primary subject.
    pub node: Option<NodeId>,
    /// Secondary subject (e.g. message recipient).
    pub peer: Option<NodeId>,
    /// Free-form detail.
    pub detail: String,
}

/// A bounded, optionally disabled, append-only log.
///
/// Disabled logs drop records with near-zero cost so production-sized runs
/// pay nothing for tracing they do not use.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceLog {
    /// A log that records up to `capacity` events, evicting the oldest.
    pub fn enabled(capacity: usize) -> Self {
        TraceLog {
            enabled: true,
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A log that records nothing.
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// Whether this log records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (no-op when disabled).
    pub fn push(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Convenience: record a custom event.
    pub fn note(&mut self, at: SimTime, detail: impl Into<String>) {
        self.push(TraceEvent {
            at,
            kind: TraceKind::Custom,
            node: None,
            peer: None,
            detail: detail.into(),
        });
    }

    /// Records currently held (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records of a given kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_millis(ms),
            kind,
            node: None,
            peer: None,
            detail: String::new(),
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.push(ev(1, TraceKind::Custom));
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = TraceLog::enabled(10);
        log.push(ev(1, TraceKind::MessageSent));
        log.push(ev(2, TraceKind::MessageDelivered));
        let times: Vec<u64> = log.events().map(|e| e.at.as_millis()).collect();
        assert_eq!(times, vec![1, 2]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = TraceLog::enabled(3);
        for i in 0..5 {
            log.push(ev(i, TraceKind::Custom));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let times: Vec<u64> = log.events().map(|e| e.at.as_millis()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn kind_filter() {
        let mut log = TraceLog::enabled(10);
        log.push(ev(1, TraceKind::Interaction));
        log.push(ev(2, TraceKind::Disclosure));
        log.push(ev(3, TraceKind::Interaction));
        assert_eq!(log.of_kind(TraceKind::Interaction).count(), 2);
        assert_eq!(log.of_kind(TraceKind::Lifecycle).count(), 0);
    }

    #[test]
    fn note_is_custom() {
        let mut log = TraceLog::enabled(4);
        log.note(SimTime::from_millis(7), "hello");
        assert_eq!(log.of_kind(TraceKind::Custom).count(), 1);
        assert_eq!(log.events().next().unwrap().detail, "hello");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut log = TraceLog::enabled(0);
        log.push(ev(1, TraceKind::Custom));
        log.push(ev(2, TraceKind::Custom));
        assert_eq!(log.len(), 1);
    }
}
