//! Recycled field buffers for the hot message path.
//!
//! Every protocol round builds numeric field buffers (one per sent
//! record) and drops them again on delivery. Allocating those on the
//! heap each time made the gossip path allocation-bound; the
//! [`BufferPool`] instead keeps the freed allocations on a freelist so
//! steady-state rounds reuse capacity instead of touching the
//! allocator.
//!
//! Ownership rules (see DESIGN.md §8):
//!
//! * buffers are *acquired* empty (recycled capacity, length 0);
//! * a buffer travels inside a [`Payload::Record`] envelope;
//! * whoever consumes the envelope *returns* the buffer — the
//!   [`Network`](crate::Network) recycles on loss, dead-letter and
//!   mailbox clearing, the protocol round driver recycles consumed
//!   inboxes;
//! * returning a buffer through [`BufferPool::recycle`] is always
//!   optional — a dropped buffer is a missed reuse, never a leak or a
//!   double-free.

use crate::message::Payload;

/// A freelist of `f64` field buffers.
///
/// The pool stores `Vec<f64>` rather than `Box<[f64]>` so the retained
/// *capacity* survives reuse across messages of different sizes; wire
/// accounting uses the length, so pooling never changes byte counts.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f64>>,
    fresh: u64,
    reused: u64,
    /// Buffers currently handed out (acquired, not yet returned).
    outstanding: usize,
    /// Highest `outstanding` ever observed.
    high_water: usize,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the freelist: parks `count` buffers of `capacity`
    /// floats each, so a run whose working set is known up front (the
    /// scenario engine's `2n + 2` bound, a mega-scale protocol run)
    /// never pays a pool miss mid-round. Counts toward
    /// [`BufferPool::fresh_allocations`] now — at a chosen moment —
    /// instead of during the measured loop.
    pub fn prewarm(&mut self, count: usize, capacity: usize) {
        self.free.reserve(count);
        for _ in 0..count {
            self.fresh += 1;
            self.free.push(Vec::with_capacity(capacity.max(1)));
        }
    }

    /// Hands out an empty buffer, reusing a freed allocation when one
    /// is available.
    pub fn acquire(&mut self) -> Vec<f64> {
        self.outstanding += 1;
        self.high_water = self.high_water.max(self.outstanding);
        match self.free.pop() {
            Some(buf) => {
                self.reused += 1;
                buf
            }
            None => {
                self.fresh += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the freelist. Zero-capacity buffers are
    /// dropped — hoarding them would recycle nothing. Either way the
    /// buffer counts as returned for [`BufferPool::outstanding`].
    pub fn release(&mut self, mut buf: Vec<f64>) {
        self.outstanding = self.outstanding.saturating_sub(1);
        if buf.capacity() > 0 {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Extracts and releases the field buffer of a consumed payload.
    /// Non-record payloads are simply dropped.
    pub fn recycle(&mut self, payload: Payload) {
        if let Payload::Record { fields, .. } = payload {
            self.release(fields);
        }
    }

    /// Buffers currently parked on the freelist.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Buffers created from scratch (pool misses) since construction.
    /// A steady-state protocol loop must keep this constant — the
    /// pool-reuse equivalence test pins exactly that.
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh
    }

    /// Buffers handed out from the freelist (pool hits).
    pub fn reuses(&self) -> u64 {
        self.reused
    }

    /// Buffers currently in flight: acquired and not yet returned via
    /// [`BufferPool::release`]/[`BufferPool::recycle`]. Dropping a
    /// buffer without returning it leaves it counted here forever —
    /// deliberately, because that silent drop is exactly the leak shape
    /// a long-lived service makes observable (a batch run hides it
    /// behind process exit). A steady-state loop must return to the
    /// same `outstanding` level every round.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The highest [`BufferPool::outstanding`] ever observed — the
    /// pool's true working-set bound. A soak run asserts this stays at
    /// the analytic `2n + 2` envelope no matter how many events flow
    /// through; unbounded growth here means buffers leak out of the
    /// ownership cycle (see the module docs) faster than they return.
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Tag;

    #[test]
    fn acquire_release_reuses_capacity() {
        let mut pool = BufferPool::new();
        let mut buf = pool.acquire();
        assert_eq!(pool.fresh_allocations(), 1);
        buf.extend([1.0, 2.0, 3.0]);
        let ptr = buf.as_ptr();
        pool.release(buf);
        assert_eq!(pool.free_len(), 1);
        let again = pool.acquire();
        assert_eq!(again.len(), 0, "recycled buffers come back empty");
        assert!(again.capacity() >= 3);
        assert_eq!(again.as_ptr(), ptr, "same allocation came back");
        assert_eq!(pool.reuses(), 1);
        assert_eq!(pool.fresh_allocations(), 1);
    }

    #[test]
    fn prewarm_parks_sized_buffers_up_front() {
        let mut pool = BufferPool::new();
        pool.prewarm(4, 128);
        assert_eq!(pool.free_len(), 4);
        assert_eq!(pool.fresh_allocations(), 4);
        let buf = pool.acquire();
        assert!(buf.capacity() >= 128);
        assert_eq!(pool.reuses(), 1);
        assert_eq!(pool.fresh_allocations(), 4, "no miss after prewarm");
    }

    #[test]
    fn zero_capacity_buffers_are_not_hoarded() {
        let mut pool = BufferPool::new();
        pool.release(Vec::new());
        assert_eq!(pool.free_len(), 0);
    }

    #[test]
    fn outstanding_and_high_water_track_the_ownership_cycle() {
        let mut pool = BufferPool::new();
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.high_water_mark(), 0);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.outstanding(), 2);
        assert_eq!(pool.high_water_mark(), 2);
        pool.release(a);
        assert_eq!(pool.outstanding(), 1, "release returns a buffer");
        // Zero-capacity buffers are dropped from the freelist but still
        // count as returned.
        pool.release(b);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.free_len(), 0, "both buffers had no capacity");
        // High water is sticky: later steady-state reuse never lowers it.
        let c = pool.acquire();
        pool.release(c);
        assert_eq!(pool.high_water_mark(), 2);
    }

    #[test]
    fn prewarm_does_not_count_as_outstanding() {
        let mut pool = BufferPool::new();
        pool.prewarm(8, 16);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(
            pool.high_water_mark(),
            0,
            "parked buffers are not in flight"
        );
        let buf = pool.acquire();
        assert_eq!(pool.outstanding(), 1);
        pool.release(buf);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.high_water_mark(), 1);
    }

    #[test]
    fn steady_state_loop_keeps_outstanding_flat() {
        let mut pool = BufferPool::new();
        pool.prewarm(2, 8);
        for _ in 0..1000 {
            let mut buf = pool.acquire();
            buf.push(1.0);
            pool.release(buf);
        }
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.high_water_mark(), 1, "one buffer in flight at a time");
        assert_eq!(pool.fresh_allocations(), 2, "prewarm only");
    }

    #[test]
    fn recycle_extracts_record_fields_only() {
        let mut pool = BufferPool::new();
        pool.recycle(Payload::Record {
            tag: Tag::new("t"),
            fields: vec![1.0],
        });
        assert_eq!(pool.free_len(), 1);
        pool.recycle(Payload::Text("x".into()));
        pool.recycle(Payload::Bytes(vec![1, 2]));
        assert_eq!(pool.free_len(), 1, "only record fields are pooled");
    }
}
