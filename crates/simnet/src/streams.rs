//! The stream-domain registry: every `SimRng::stream` caller in the
//! workspace, in one place.
//!
//! [`SimRng::stream`](crate::SimRng::stream) derives an independent
//! generator from `(seed, label)`. Labels used to be ad-hoc per-module
//! constants, which made collisions (two subsystems drawing correlated
//! randomness from the same stream) invisible until someone diffed the
//! call sites by hand. This module is the single registry: a
//! [`StreamDomain`] names every caller, carries its high-bit tag, and a
//! compile-time check plus a unit test reject any two domains that
//! share both a seed family and a tag.
//!
//! ## Seed families
//!
//! A label only collides with another label *under the same seed*.
//! The workspace derives several independent seeds from one config
//! seed (e.g. the scenario engine hands `config.seed` to interaction
//! streams but `config.seed ^ DYNAMICS_SALT` to the dynamics runtime),
//! so the registry keys uniqueness on `(family, tag)`, not on the tag
//! alone. Two historical tags — [`StreamDomain::ScenarioOffline`] and
//! [`StreamDomain::ServiceRetry`] — share the raw value `1 << 62`; they
//! are sound because one labels scenario-seed streams and the other
//! driver-seed streams, and the registry documents exactly that instead
//! of letting the overlap hide in two distant files.
//!
//! Tag values are frozen: they are part of the reproducibility
//! contract (goldens, BENCH fingerprints, torture replays), so a new
//! domain takes a fresh value and an existing one never changes.

/// The seed namespace a stream label lives in. Labels are unique per
/// family; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamFamily {
    /// Streams derived from the scenario config seed (`config.seed`).
    Scenario,
    /// Streams derived from the service-driver seed.
    Service,
    /// Streams derived from the fault-plan seed.
    Fault,
    /// Streams derived from the membership seed
    /// (`seed ^ MEMBERSHIP_SEED_SALT`, see
    /// [`membership`](crate::membership)).
    Membership,
}

/// One registered `SimRng::stream` caller.
///
/// The low bits of a label carry the per-draw coordinates (round, node,
/// epoch, attempt…); the domain tag occupies the high bits so streams
/// from different subsystems can never alias. Each variant documents
/// its low-bit layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamDomain {
    /// Per-(round, node) interaction streams of the scenario engine's
    /// sharded path. Low bits: `(round << 32) | node`.
    Interaction,
    /// Per-round offline coin flips of the scenario engine's sharded
    /// path. Low bits: `round`.
    ScenarioOffline,
    /// Per-(epoch, node) op streams of the service driver. Low bits:
    /// `(epoch << 32) | node`.
    ServiceOp,
    /// Per-epoch interaction-quality streams of the service driver.
    /// Low bits: `epoch`.
    ServiceQuality,
    /// Per-(op, attempt) retry-backoff jitter of the service client.
    /// Low bits: `(op_id << 8) | (attempt & 0xff)`.
    ServiceRetry,
    /// Per-subject message-fault verdict streams of the fault
    /// injector. Low bits: XORed subject id (historical layout: the
    /// tag is XORed, not ORed, with the id).
    FaultMessage,
    /// Per-subject storage-fault streams of the fault injector. Low
    /// bits: XORed subject id.
    FaultStorage,
    /// Per-round view-shuffle streams of the membership overlay. Low
    /// bits: `round`.
    MembershipShuffle,
    /// Bootstrap view seeding of the membership overlay. Low bits:
    /// `node`.
    MembershipBootstrap,
}

impl StreamDomain {
    /// Every registered domain, for exhaustive collision checks.
    pub const ALL: [StreamDomain; 9] = [
        StreamDomain::Interaction,
        StreamDomain::ScenarioOffline,
        StreamDomain::ServiceOp,
        StreamDomain::ServiceQuality,
        StreamDomain::ServiceRetry,
        StreamDomain::FaultMessage,
        StreamDomain::FaultStorage,
        StreamDomain::MembershipShuffle,
        StreamDomain::MembershipBootstrap,
    ];

    /// The seed family this domain draws under.
    pub const fn family(self) -> StreamFamily {
        match self {
            StreamDomain::Interaction | StreamDomain::ScenarioOffline => StreamFamily::Scenario,
            StreamDomain::ServiceOp | StreamDomain::ServiceQuality | StreamDomain::ServiceRetry => {
                StreamFamily::Service
            }
            StreamDomain::FaultMessage | StreamDomain::FaultStorage => StreamFamily::Fault,
            StreamDomain::MembershipShuffle | StreamDomain::MembershipBootstrap => {
                StreamFamily::Membership
            }
        }
    }

    /// The high-bit tag combined with per-draw low bits to form the
    /// stream label. Frozen — see the [module docs](self).
    pub const fn tag(self) -> u64 {
        match self {
            // Historically untagged: the per-(round,node) /
            // per-(epoch,node) coordinates *are* the label.
            StreamDomain::Interaction | StreamDomain::ServiceOp => 0,
            StreamDomain::ScenarioOffline => 1 << 62,
            StreamDomain::ServiceQuality => 1 << 61,
            StreamDomain::ServiceRetry => 1 << 62,
            StreamDomain::FaultMessage => 0x7A00_0000_0000_0000,
            StreamDomain::FaultStorage => 0x7B00_0000_0000_0000,
            StreamDomain::MembershipShuffle => 0x7C00_0000_0000_0000,
            StreamDomain::MembershipBootstrap => 0x7D00_0000_0000_0000,
        }
    }

    /// Derives the stream for this domain under `family_seed`, with
    /// the variant's documented low-bit coordinates ORed in.
    pub fn stream(self, family_seed: u64, low: u64) -> crate::SimRng {
        crate::SimRng::stream(family_seed, self.tag() | low)
    }
}

// Compile-time collision check: no two domains may share both a seed
// family and a tag. A colliding addition fails `cargo build`, not a
// test run.
const _: () = {
    let all = StreamDomain::ALL;
    let mut i = 0;
    while i < all.len() {
        let mut j = i + 1;
        while j < all.len() {
            let same_family = all[i].family() as u64 == all[j].family() as u64;
            assert!(
                !(same_family && all[i].tag() == all[j].tag()),
                "stream domain collision: two domains share a seed family and a tag"
            );
            j += 1;
        }
        i += 1;
    }
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_family_tag_collisions() {
        for (i, a) in StreamDomain::ALL.iter().enumerate() {
            for b in &StreamDomain::ALL[i + 1..] {
                assert!(
                    a.family() != b.family() || a.tag() != b.tag(),
                    "{a:?} and {b:?} collide on ({:?}, {:#x})",
                    a.family(),
                    a.tag()
                );
            }
        }
    }

    #[test]
    fn historical_tags_are_frozen() {
        // These values are load-bearing for golden / replay stability;
        // a renumbering must fail loudly.
        assert_eq!(StreamDomain::Interaction.tag(), 0);
        assert_eq!(StreamDomain::ScenarioOffline.tag(), 1 << 62);
        assert_eq!(StreamDomain::ServiceQuality.tag(), 1 << 61);
        assert_eq!(StreamDomain::ServiceRetry.tag(), 1 << 62);
        assert_eq!(StreamDomain::FaultMessage.tag(), 0x7A00_0000_0000_0000);
        assert_eq!(StreamDomain::FaultStorage.tag(), 0x7B00_0000_0000_0000);
    }

    #[test]
    fn stream_matches_raw_call() {
        let mut a = StreamDomain::ScenarioOffline.stream(42, 7);
        let mut b = crate::SimRng::stream(42, (1 << 62) | 7);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn same_tag_different_family_is_documented_not_accidental() {
        // The one intentional raw-tag overlap in the workspace.
        assert_eq!(
            StreamDomain::ScenarioOffline.tag(),
            StreamDomain::ServiceRetry.tag()
        );
        assert_ne!(
            StreamDomain::ScenarioOffline.family(),
            StreamDomain::ServiceRetry.family()
        );
    }
}
