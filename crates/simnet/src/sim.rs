//! The simulation driver: merges the event queue and network deliveries
//! into one deterministic virtual-time execution.

use crate::event::{Event, EventId, EventQueue};
use crate::metrics::MetricSet;
use crate::network::{Network, NetworkConfig};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;
use crate::NodeId;

/// When a [`Simulation::run`] call stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Stop once virtual time would exceed this instant.
    At(SimTime),
    /// Stop when no events or in-flight messages remain.
    Idle,
    /// Stop after processing this many events (safety valve for
    /// self-rescheduling workloads).
    MaxEvents(u64),
}

/// Summary of one `run` invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Events executed.
    pub events_processed: u64,
    /// Messages moved into mailboxes during the run.
    pub messages_delivered: u64,
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
}

/// A deterministic discrete-event simulation.
///
/// Owns the clock, the [`EventQueue`], the [`Network`], a [`MetricSet`] and
/// a [`TraceLog`]. See the crate-level docs for an end-to-end example.
pub struct Simulation {
    now: SimTime,
    queue: EventQueue,
    rng: SimRng,
    network: Network,
    metrics: MetricSet,
    trace: TraceLog,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("nodes", &self.network.node_count())
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation with default (benign LAN) transport.
    pub fn new(mut rng: SimRng) -> Self {
        let net_rng = rng.fork(0x6e65_7477); // "netw"
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng,
            network: Network::new(NetworkConfig::default(), net_rng),
            metrics: MetricSet::new(),
            trace: TraceLog::disabled(),
        }
    }

    /// Creates a simulation with an explicit transport configuration.
    pub fn with_network(mut rng: SimRng, config: NetworkConfig) -> Self {
        let net_rng = rng.fork(0x6e65_7477);
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng,
            network: Network::new(config, net_rng),
            metrics: MetricSet::new(),
            trace: TraceLog::disabled(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Registers a node with the network.
    pub fn add_node(&mut self) -> NodeId {
        self.network.add_node()
    }

    /// The simulation's RNG (fork it for subsystem streams).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The network, e.g. to send messages or drain inboxes.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Read-only network access.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Metrics collected during the run.
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    /// Mutable metrics access for event handlers.
    pub fn metrics_mut(&mut self) -> &mut MetricSet {
        &mut self.metrics
    }

    /// The trace log (disabled by default; see [`TraceLog::enabled`]).
    pub fn trace_mut(&mut self) -> &mut TraceLog {
        &mut self.trace
    }

    /// Replaces the trace log (e.g. with an enabled one).
    pub fn set_trace(&mut self, trace: TraceLog) {
        self.trace = trace;
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut Simulation) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule in the past ({at} < {})",
            self.now
        );
        self.queue.schedule(at, Box::new(action) as Event)
    }

    /// Schedules `action` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Simulation) + 'static,
    ) -> EventId {
        let at = self.now + delay;
        self.queue.schedule(at, Box::new(action) as Event)
    }

    /// Cancels a scheduled event. Returns `true` if it was pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Executes the next step (the earlier of the next event and the next
    /// network delivery). Returns `false` when nothing remains.
    pub fn step(&mut self) -> bool {
        let next_event = self.queue.peek_time();
        let next_delivery = self.network.next_delivery_time();
        let next = match (next_event, next_delivery) {
            (None, None) => return false,
            (Some(e), None) => e,
            (None, Some(d)) => d,
            (Some(e), Some(d)) => e.min(d),
        };
        self.now = next;
        self.network.advance_to(next);
        // Run *all* events at this instant that were already due; events an
        // action schedules for the same instant run in the same pass (they
        // get larger EventIds, hence later in the tie order).
        while let Some(t) = self.queue.peek_time() {
            if t > self.now {
                break;
            }
            // tsn-lint: allow(no-unwrap, "pop directly follows a successful peek on the same queue within one &mut borrow")
            let ev = self.queue.pop().expect("peeked event exists");
            (ev.action)(self);
        }
        true
    }

    /// Runs until the stop condition is met. Returns a [`RunReport`].
    pub fn run(&mut self, stop: StopCondition) -> RunReport {
        let delivered_before = self.network.stats().delivered.value();
        let mut events = 0u64;
        loop {
            match stop {
                StopCondition::At(t) => {
                    let next_event = self.queue.peek_time();
                    let next_delivery = self.network.next_delivery_time();
                    let next = match (next_event, next_delivery) {
                        (None, None) => break,
                        (Some(e), None) => e,
                        (None, Some(d)) => d,
                        (Some(e), Some(d)) => e.min(d),
                    };
                    if next > t {
                        break;
                    }
                }
                StopCondition::Idle => {}
                StopCondition::MaxEvents(max) => {
                    if events >= max {
                        break;
                    }
                }
            }
            let before = self.queue.len();
            if !self.step() {
                break;
            }
            // Count events actually executed this step.
            events += (before.saturating_sub(self.queue.len())).max(1) as u64;
        }
        if let StopCondition::At(t) = stop {
            // Advance the clock to the horizon so repeated runs compose.
            if self.now < t {
                self.now = t;
                self.network.advance_to(t);
            }
        }
        RunReport {
            events_processed: events,
            messages_delivered: self.network.stats().delivered.value() - delivered_before,
            end_time: self.now,
        }
    }

    /// Convenience: `run(StopCondition::At(t))`.
    pub fn run_until(&mut self, t: SimTime) -> RunReport {
        self.run(StopCondition::At(t))
    }

    /// Convenience: `run(StopCondition::Idle)`.
    pub fn run_to_idle(&mut self) -> RunReport {
        self.run(StopCondition::Idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn sim() -> Simulation {
        Simulation::new(SimRng::seed_from_u64(0))
    }

    #[test]
    fn events_fire_in_order_and_advance_clock() {
        let mut sim = sim();
        let log = Rc::new(RefCell::new(Vec::new()));
        for ms in [30u64, 10, 20] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_millis(ms), move |s| {
                log.borrow_mut().push(s.now().as_millis());
            });
        }
        let report = sim.run_to_idle();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(report.events_processed, 3);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn run_until_stops_at_horizon_and_advances_clock() {
        let mut sim = sim();
        let fired = Rc::new(RefCell::new(0));
        let f = Rc::clone(&fired);
        sim.schedule_at(SimTime::from_secs(10), move |_| {
            *f.borrow_mut() += 1;
        });
        let report = sim.run_until(SimTime::from_secs(1));
        assert_eq!(*fired.borrow(), 0);
        assert_eq!(report.end_time, SimTime::from_secs(1));
        assert_eq!(sim.now(), SimTime::from_secs(1));
        sim.run_until(SimTime::from_secs(11));
        assert_eq!(*fired.borrow(), 1);
    }

    #[test]
    fn events_can_reschedule_themselves() {
        // A periodic task that reschedules until a counter hits 5.
        fn tick(sim: &mut Simulation, count: Rc<RefCell<u32>>) {
            *count.borrow_mut() += 1;
            if *count.borrow() < 5 {
                let c = Rc::clone(&count);
                sim.schedule_in(SimDuration::from_millis(100), move |s| tick(s, c));
            }
        }
        let mut sim = sim();
        let count = Rc::new(RefCell::new(0u32));
        let c = Rc::clone(&count);
        sim.schedule_at(SimTime::ZERO, move |s| tick(s, c));
        sim.run_to_idle();
        assert_eq!(*count.borrow(), 5);
        assert_eq!(sim.now(), SimTime::from_millis(400));
    }

    #[test]
    fn max_events_stop_condition_bounds_work() {
        fn forever(sim: &mut Simulation) {
            sim.schedule_in(SimDuration::from_millis(1), forever);
        }
        let mut sim = sim();
        sim.schedule_at(SimTime::ZERO, forever);
        let report = sim.run(StopCondition::MaxEvents(100));
        assert!(report.events_processed >= 100 && report.events_processed < 110);
    }

    #[test]
    fn message_send_and_receive_through_sim() {
        let mut sim = sim();
        let a = sim.add_node();
        let b = sim.add_node();
        sim.schedule_at(SimTime::from_millis(5), move |s| {
            s.network_mut().send(a, b, "ping".into());
        });
        let report = sim.run_to_idle();
        assert_eq!(report.messages_delivered, 1);
        let inbox = sim.network_mut().take_inbox(b);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].sent_at, SimTime::from_millis(5));
        // default LAN latency = 10ms
        assert_eq!(sim.now(), SimTime::from_millis(15));
    }

    #[test]
    fn deliveries_and_events_interleave_chronologically() {
        let mut sim = sim();
        let a = sim.add_node();
        let b = sim.add_node();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l1 = Rc::clone(&log);
        // Send at t=0; arrives at t=10ms.
        sim.schedule_at(SimTime::ZERO, move |s| {
            s.network_mut().send(a, b, "m".into());
        });
        // Event at t=5ms should observe an empty mailbox...
        let l2 = Rc::clone(&log);
        sim.schedule_at(SimTime::from_millis(5), move |s| {
            l2.borrow_mut().push(("at5", s.network().inbox_len(b)));
        });
        // ...and an event at t=12ms should observe the delivered message.
        sim.schedule_at(SimTime::from_millis(12), move |s| {
            l1.borrow_mut().push(("at12", s.network().inbox_len(b)));
        });
        sim.run_to_idle();
        assert_eq!(*log.borrow(), vec![("at5", 0), ("at12", 1)]);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = sim();
        let fired = Rc::new(RefCell::new(false));
        let f = Rc::clone(&fired);
        let id = sim.schedule_at(SimTime::from_millis(1), move |_| {
            *f.borrow_mut() = true;
        });
        assert!(sim.cancel(id));
        sim.run_to_idle();
        assert!(!*fired.borrow());
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = sim();
        sim.schedule_at(SimTime::from_secs(5), |_| {});
        sim.run_to_idle();
        sim.schedule_at(SimTime::from_secs(1), |_| {});
    }

    #[test]
    fn identical_seeds_replay_identically() {
        fn run_one(seed: u64) -> (u64, u64) {
            let mut sim = Simulation::new(SimRng::seed_from_u64(seed));
            let nodes: Vec<_> = (0..10).map(|_| sim.add_node()).collect();
            for i in 0..50u64 {
                let nodes = nodes.clone();
                sim.schedule_at(SimTime::from_millis(i * 7), move |s| {
                    let from = nodes[s.rng_mut().gen_range(0..nodes.len())];
                    let to = nodes[s.rng_mut().gen_range(0..nodes.len())];
                    if from != to {
                        s.network_mut().send(from, to, "x".into());
                    }
                });
            }
            let r = sim.run_to_idle();
            (r.events_processed, sim.network().stats().delivered.value())
        }
        assert_eq!(run_one(77), run_one(77));
    }

    #[test]
    fn metrics_accessible_from_handlers() {
        let mut sim = sim();
        sim.schedule_at(SimTime::ZERO, |s| s.metrics_mut().incr("custom.event"));
        sim.run_to_idle();
        assert_eq!(sim.metrics().counter("custom.event"), 1);
    }
}
