//! Deterministic fault injection: message, process and storage faults.
//!
//! The dynamics layer (churn, partitions, latency — see [`dynamics`])
//! models the *environment* degrading; this module models the system
//! itself failing: messages duplicated, reordered or corrupted on the
//! wire, processes crashing mid-epoch and restarting after a delay,
//! checkpoints torn or bit-flipped on storage. A [`FaultPlan`] schedules
//! all three families on the same sim clock as a
//! [`DynamicsPlan`](crate::DynamicsPlan), so the two compose: a run can
//! partition *and* crash *and* corrupt, each on its own schedule.
//!
//! # Determinism
//!
//! Every fault decision is drawn from [`SimRng::stream`] keyed by
//! `(seed, fault domain, subject)` — the message id for wire faults, a
//! caller-chosen label for storage faults. No draw consumes from any
//! shared generator, so the fault schedule is a pure function of
//! `(seed, plan, workload)`: replaying a run replays its faults
//! bit-for-bit, which is what makes crash-torture sweeps pinnable
//! (see `tests/faults.rs`).
//!
//! # Consumers
//!
//! * [`Network::attach_faults`](crate::Network::attach_faults) applies
//!   message faults at send time (duplicate / reorder-within-bound /
//!   payload corruption / dead-letter bursts).
//! * `tsn_service::ServiceHost` consumes process faults (crash at a
//!   sim time, restart after a delay) and storage faults (checkpoint
//!   truncation, bit flips, stale-version substitution).
//!
//! [`dynamics`]: crate::dynamics

use crate::message::{MessageId, Payload};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::NodeId;

/// Stream-label domain for per-message wire-fault draws (registered
/// as [`StreamDomain::FaultMessage`](crate::StreamDomain)).
const MESSAGE_DOMAIN: u64 = crate::StreamDomain::FaultMessage.tag();
/// Stream-label domain for storage-fault draws (registered as
/// [`StreamDomain::FaultStorage`](crate::StreamDomain)).
const STORAGE_DOMAIN: u64 = crate::StreamDomain::FaultStorage.tag();

/// A wire fault active over `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageFault {
    /// When the fault becomes active.
    pub start: SimTime,
    /// When it stops ([`SimTime::MAX`] = never).
    pub end: SimTime,
    /// What it does to affected messages.
    pub kind: MessageFaultKind,
}

/// The wire-fault vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum MessageFaultKind {
    /// Deliver the message twice (same id — a true duplicate, the kind
    /// retry-happy transports produce).
    Duplicate {
        /// Per-message probability.
        probability: f64,
    },
    /// Delay the message by up to `bound` beyond its modeled latency,
    /// letting later sends overtake it — reordering within a bound.
    Reorder {
        /// Per-message probability.
        probability: f64,
        /// Maximum extra delay (must be positive).
        bound: SimDuration,
    },
    /// Flip one deterministic bit of the payload.
    Corrupt {
        /// Per-message probability.
        probability: f64,
    },
    /// Silently drop the message — a dead-letter burst while active.
    DeadLetterBurst {
        /// Per-message probability.
        probability: f64,
    },
}

impl MessageFaultKind {
    fn probability(&self) -> f64 {
        match *self {
            MessageFaultKind::Duplicate { probability }
            | MessageFaultKind::Reorder { probability, .. }
            | MessageFaultKind::Corrupt { probability }
            | MessageFaultKind::DeadLetterBurst { probability } => probability,
        }
    }
}

/// Who a process fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The online `TrustService` process.
    Service,
    /// One protocol node.
    Node(NodeId),
    /// One member of a replicated service, by replica index (a replica
    /// set scopes each member's crash schedule to its own target out of
    /// one shared plan).
    Replica(u32),
}

/// A scheduled crash: the target loses all volatile state at `at` and
/// comes back `restart_after` later (recovering from durable storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessFault {
    /// Who crashes.
    pub target: FaultTarget,
    /// When the crash happens.
    pub at: SimTime,
    /// Downtime before the restart ([`SimDuration::MAX`] = never
    /// restarts; the restart instant saturates at the horizon).
    pub restart_after: SimDuration,
}

impl ProcessFault {
    /// The instant the target is back up, saturating at the horizon.
    pub fn restart_at(&self) -> SimTime {
        self.at.saturating_add(self.restart_after)
    }
}

/// What a storage fault does to a checkpoint write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StorageFaultKind {
    /// Keep only the leading `keep_fraction` of the bytes (a torn
    /// write).
    Truncate {
        /// Fraction of the checkpoint that survives, in `[0, 1)`.
        keep_fraction: f64,
    },
    /// Flip `flips` deterministic bits anywhere in the checkpoint.
    BitFlip {
        /// Number of bits to flip (at least 1).
        flips: u32,
    },
    /// Substitute the previously stored version (a lost write that
    /// leaves the old file in place).
    StaleVersion,
}

/// A storage fault active over `[start, end)`: every checkpoint write
/// whose sim time falls inside the window is affected.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageFault {
    /// When writes start being affected.
    pub start: SimTime,
    /// When writes stop being affected ([`SimTime::MAX`] = never).
    pub end: SimTime,
    /// What happens to affected writes.
    pub kind: StorageFaultKind,
}

/// A validated, composable fault schedule (see the module docs).
///
/// The empty plan is the default and injects nothing; presets cover the
/// common shapes. A plan composes with a
/// [`DynamicsPlan`](crate::DynamicsPlan) trivially — both run on the
/// sim clock and touch disjoint machinery.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Wire faults.
    pub message: Vec<MessageFault>,
    /// Process crashes.
    pub process: Vec<ProcessFault>,
    /// Checkpoint-storage faults.
    pub storage: Vec<StorageFault>,
}

impl FaultPlan {
    /// Whether the plan injects nothing.
    pub fn is_quiet(&self) -> bool {
        self.message.is_empty() && self.process.is_empty() && self.storage.is_empty()
    }

    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid entry: probabilities
    /// outside `[0, 1]`, empty windows, a zero reorder bound, a
    /// truncation keeping everything, zero bit flips, or per-target
    /// crashes that overlap a previous downtime.
    pub fn validate(&self) -> Result<(), String> {
        for (i, f) in self.message.iter().enumerate() {
            if f.end <= f.start {
                return Err(format!("message fault {i} must end after it starts"));
            }
            let p = f.kind.probability();
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "message fault {i} probability must be in [0, 1], got {p}"
                ));
            }
            if let MessageFaultKind::Reorder { bound, .. } = f.kind {
                if bound == SimDuration::ZERO {
                    return Err(format!("message fault {i} reorder bound must be positive"));
                }
            }
        }
        for (i, f) in self.process.iter().enumerate() {
            for (j, g) in self.process.iter().enumerate().take(i) {
                if f.target == g.target && f.at < g.restart_at() && g.at < f.restart_at() {
                    return Err(format!(
                        "process faults {j} and {i} overlap for the same target"
                    ));
                }
            }
        }
        for (i, f) in self.storage.iter().enumerate() {
            if f.end <= f.start {
                return Err(format!("storage fault {i} must end after it starts"));
            }
            match f.kind {
                StorageFaultKind::Truncate { keep_fraction } => {
                    if !(0.0..1.0).contains(&keep_fraction) {
                        return Err(format!(
                            "storage fault {i} keep_fraction must be in [0, 1), got {keep_fraction}"
                        ));
                    }
                }
                StorageFaultKind::BitFlip { flips } => {
                    if flips == 0 {
                        return Err(format!("storage fault {i} must flip at least one bit"));
                    }
                }
                StorageFaultKind::StaleVersion => {}
            }
        }
        Ok(())
    }

    /// Preset: a degraded wire over `[start, end)` — 2 % duplicates,
    /// 5 % reorders within 50 ms, 1 % corruption, 2 % dead-letter.
    pub fn lossy_wire(start: SimTime, end: SimTime) -> Self {
        let window = |kind| MessageFault { start, end, kind };
        FaultPlan {
            message: vec![
                window(MessageFaultKind::Duplicate { probability: 0.02 }),
                window(MessageFaultKind::Reorder {
                    probability: 0.05,
                    bound: SimDuration::from_millis(50),
                }),
                window(MessageFaultKind::Corrupt { probability: 0.01 }),
                window(MessageFaultKind::DeadLetterBurst { probability: 0.02 }),
            ],
            ..FaultPlan::default()
        }
    }

    /// Preset: a relay outage for the online path — the first `relays`
    /// node slots (the membership overlay's bootstrap/relay nodes, see
    /// [`membership`](crate::membership)) crash at `start` and restart
    /// at `end`. The service-side twin of
    /// [`DynamicsPlan::relay_outage`](crate::DynamicsPlan::relay_outage):
    /// while the relays are down, driver nodes whose views decay
    /// cannot re-bootstrap and skip their ops as isolated.
    pub fn relay_outage(relays: u32, start: SimTime, end: SimTime) -> Self {
        FaultPlan {
            process: (0..relays)
                .map(|i| ProcessFault {
                    target: FaultTarget::Node(NodeId(i)),
                    at: start,
                    restart_after: end.duration_since(start),
                })
                .collect(),
            ..FaultPlan::default()
        }
    }

    /// Whether a [`FaultTarget::Node`] crash window covers `at` for
    /// this node — the membership overlay's liveness probe for relays
    /// and shuffle partners on the online path.
    pub fn node_down(&self, node: NodeId, at: SimTime) -> bool {
        self.process
            .iter()
            .any(|f| f.target == FaultTarget::Node(node) && at >= f.at && at < f.restart_at())
    }

    /// Preset: the service crashes at `at` and restarts `downtime`
    /// later.
    pub fn service_crash(at: SimTime, downtime: SimDuration) -> Self {
        FaultPlan {
            process: vec![ProcessFault {
                target: FaultTarget::Service,
                at,
                restart_after: downtime,
            }],
            ..FaultPlan::default()
        }
    }

    /// Preset: replica `index` of a replicated service crashes at `at`
    /// and restarts `downtime` later — the kill-primary building block
    /// of failover tests (a fresh replica set's primary is replica 0).
    pub fn replica_crash(index: u32, at: SimTime, downtime: SimDuration) -> Self {
        FaultPlan {
            process: vec![ProcessFault {
                target: FaultTarget::Replica(index),
                at,
                restart_after: downtime,
            }],
            ..FaultPlan::default()
        }
    }

    /// Preset: every checkpoint written in `[start, end)` is torn,
    /// keeping 60 % of its bytes.
    pub fn torn_checkpoints(start: SimTime, end: SimTime) -> Self {
        FaultPlan {
            storage: vec![StorageFault {
                start,
                end,
                kind: StorageFaultKind::Truncate { keep_fraction: 0.6 },
            }],
            ..FaultPlan::default()
        }
    }

    /// Preset: every checkpoint written in `[start, end)` suffers one
    /// flipped bit — the silent-corruption case per-section CRCs exist
    /// to catch.
    pub fn bit_rot(start: SimTime, end: SimTime) -> Self {
        FaultPlan {
            storage: vec![StorageFault {
                start,
                end,
                kind: StorageFaultKind::BitFlip { flips: 1 },
            }],
            ..FaultPlan::default()
        }
    }
}

/// What the injector decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageVerdict {
    /// Drop the message (dead-letter burst). Overrides everything else.
    pub dropped: bool,
    /// Deliver it twice.
    pub duplicated: bool,
    /// Extra delay beyond the latency model ([`SimDuration::ZERO`] =
    /// none).
    pub extra_delay: SimDuration,
    /// Flip one payload bit before delivery.
    pub corrupted: bool,
}

impl MessageVerdict {
    /// Whether the message passes through untouched.
    pub fn is_clean(&self) -> bool {
        *self == MessageVerdict::default()
    }
}

/// Executes a [`FaultPlan`] deterministically (see the module docs).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
}

impl FaultInjector {
    /// Builds an injector from a validated plan.
    ///
    /// # Errors
    ///
    /// Returns the plan's validation error.
    pub fn new(plan: FaultPlan, seed: u64) -> Result<Self, String> {
        plan.validate()?;
        Ok(FaultInjector { plan, seed })
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The seed the fault schedule replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decides the fate of message `id` sent at `at` — a pure function
    /// of `(seed, plan, id, at)`, so the same send sequence replays the
    /// same faults. Active faults draw in plan order from the message's
    /// own stream.
    pub fn message_verdict(&self, id: MessageId, at: SimTime) -> MessageVerdict {
        let mut verdict = MessageVerdict::default();
        if self.plan.message.is_empty() {
            return verdict;
        }
        let mut rng = SimRng::stream(self.seed, MESSAGE_DOMAIN ^ id.0);
        for fault in &self.plan.message {
            if at < fault.start || at >= fault.end {
                continue;
            }
            // Every active fault consumes its draw even when an earlier
            // one already decided to drop: the draw sequence stays a
            // function of the *window*, not of other faults' outcomes.
            let hit = rng.gen_bool(fault.kind.probability());
            if !hit {
                continue;
            }
            match fault.kind {
                MessageFaultKind::Duplicate { .. } => verdict.duplicated = true,
                MessageFaultKind::Reorder { bound, .. } => {
                    let us = rng.gen_range(1..=bound.as_micros().max(1));
                    verdict.extra_delay = SimDuration::from_micros(us);
                }
                MessageFaultKind::Corrupt { .. } => verdict.corrupted = true,
                MessageFaultKind::DeadLetterBurst { .. } => verdict.dropped = true,
            }
        }
        verdict
    }

    /// Flips one deterministic bit of `payload` (keyed by the message
    /// id). Text payloads blank one character instead — flipping an
    /// arbitrary bit could produce invalid UTF-8.
    pub fn corrupt_payload(&self, id: MessageId, payload: &mut Payload) {
        let mut rng = SimRng::stream(self.seed, MESSAGE_DOMAIN ^ !id.0);
        match payload {
            Payload::Record { fields, .. } => {
                if fields.is_empty() {
                    return;
                }
                let i = rng.gen_range(0..fields.len());
                let bit = rng.gen_range(0..64u32);
                fields[i] = f64::from_bits(fields[i].to_bits() ^ (1u64 << bit));
            }
            Payload::Bytes(bytes) => {
                if bytes.is_empty() {
                    return;
                }
                let i = rng.gen_range(0..bytes.len());
                let bit = rng.gen_range(0..8u32);
                bytes[i] ^= 1 << bit;
            }
            Payload::Text(text) => {
                if text.is_empty() {
                    return;
                }
                let chars: Vec<char> = text.chars().collect();
                let i = rng.gen_range(0..chars.len());
                *text = chars
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| if j == i { '?' } else { c })
                    .collect();
            }
        }
    }

    /// The crash scheduled for `target` at or after `after`, if any.
    pub fn next_crash(&self, target: FaultTarget, after: SimTime) -> Option<ProcessFault> {
        self.plan
            .process
            .iter()
            .filter(|f| f.target == target && f.at >= after)
            .min_by_key(|f| f.at)
            .copied()
    }

    /// Applies every storage fault active at `at` to a checkpoint being
    /// written, in plan order. `previous` is the last successfully
    /// stored version (for [`StorageFaultKind::StaleVersion`]); `label`
    /// keys the deterministic draws (use the checkpoint's write index).
    /// Returns the kinds applied, for fault accounting.
    pub fn corrupt_checkpoint(
        &self,
        bytes: &mut Vec<u8>,
        previous: Option<&[u8]>,
        at: SimTime,
        label: u64,
    ) -> Vec<StorageFaultKind> {
        let mut applied = Vec::new();
        for fault in &self.plan.storage {
            if at < fault.start || at >= fault.end {
                continue;
            }
            match fault.kind {
                StorageFaultKind::Truncate { keep_fraction } => {
                    let keep = (bytes.len() as f64 * keep_fraction) as usize;
                    bytes.truncate(keep);
                }
                StorageFaultKind::BitFlip { flips } => {
                    if bytes.is_empty() {
                        continue;
                    }
                    let mut rng = SimRng::stream(self.seed, STORAGE_DOMAIN ^ label);
                    for _ in 0..flips {
                        let i = rng.gen_range(0..bytes.len());
                        let bit = rng.gen_range(0..8u32);
                        bytes[i] ^= 1 << bit;
                    }
                }
                StorageFaultKind::StaleVersion => {
                    if let Some(prev) = previous {
                        bytes.clear();
                        bytes.extend_from_slice(prev);
                    }
                }
            }
            applied.push(fault.kind);
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn validation_names_the_offending_entry() {
        let bad = FaultPlan {
            message: vec![MessageFault {
                start: secs(5),
                end: secs(5),
                kind: MessageFaultKind::Duplicate { probability: 0.5 },
            }],
            ..FaultPlan::default()
        };
        assert!(bad.validate().unwrap_err().contains("message fault 0"));
        let bad = FaultPlan {
            message: vec![MessageFault {
                start: secs(0),
                end: secs(5),
                kind: MessageFaultKind::Corrupt { probability: 1.5 },
            }],
            ..FaultPlan::default()
        };
        assert!(bad.validate().unwrap_err().contains("probability"));
        let bad = FaultPlan {
            message: vec![MessageFault {
                start: secs(0),
                end: secs(5),
                kind: MessageFaultKind::Reorder {
                    probability: 0.5,
                    bound: SimDuration::ZERO,
                },
            }],
            ..FaultPlan::default()
        };
        assert!(bad.validate().unwrap_err().contains("reorder bound"));
        let bad = FaultPlan {
            storage: vec![StorageFault {
                start: secs(0),
                end: secs(9),
                kind: StorageFaultKind::Truncate { keep_fraction: 1.0 },
            }],
            ..FaultPlan::default()
        };
        assert!(bad.validate().unwrap_err().contains("keep_fraction"));
        let bad = FaultPlan {
            storage: vec![StorageFault {
                start: secs(0),
                end: secs(9),
                kind: StorageFaultKind::BitFlip { flips: 0 },
            }],
            ..FaultPlan::default()
        };
        assert!(bad.validate().unwrap_err().contains("at least one bit"));
        let bad = FaultPlan {
            process: vec![
                ProcessFault {
                    target: FaultTarget::Service,
                    at: secs(10),
                    restart_after: SimDuration::from_secs(20),
                },
                ProcessFault {
                    target: FaultTarget::Service,
                    at: secs(15),
                    restart_after: SimDuration::from_secs(1),
                },
            ],
            ..FaultPlan::default()
        };
        assert!(bad.validate().unwrap_err().contains("overlap"));
        // Same times on *different* targets are fine.
        let ok = FaultPlan {
            process: vec![
                ProcessFault {
                    target: FaultTarget::Service,
                    at: secs(10),
                    restart_after: SimDuration::from_secs(20),
                },
                ProcessFault {
                    target: FaultTarget::Node(NodeId(3)),
                    at: secs(15),
                    restart_after: SimDuration::from_secs(1),
                },
            ],
            ..FaultPlan::default()
        };
        assert!(ok.validate().is_ok());
        assert!(FaultPlan::default().validate().is_ok());
        assert!(FaultPlan::default().is_quiet());
        for preset in [
            FaultPlan::lossy_wire(secs(0), secs(100)),
            FaultPlan::service_crash(secs(5), SimDuration::from_secs(2)),
            FaultPlan::torn_checkpoints(secs(0), SimTime::MAX),
            FaultPlan::bit_rot(secs(0), SimTime::MAX),
        ] {
            preset.validate().expect("presets validate");
            assert!(!preset.is_quiet());
        }
    }

    #[test]
    fn verdicts_replay_bit_for_bit_and_respect_windows() {
        let plan = FaultPlan::lossy_wire(secs(10), secs(20));
        let a = FaultInjector::new(plan.clone(), 7).unwrap();
        let b = FaultInjector::new(plan, 7).unwrap();
        let mut touched = 0;
        for id in 0..2000u64 {
            let v1 = a.message_verdict(MessageId(id), secs(15));
            let v2 = b.message_verdict(MessageId(id), secs(15));
            assert_eq!(v1, v2, "message {id}: verdict must replay");
            if !v1.is_clean() {
                touched += 1;
            }
            // Outside the window: always clean.
            assert!(a.message_verdict(MessageId(id), secs(5)).is_clean());
            assert!(a.message_verdict(MessageId(id), secs(20)).is_clean());
        }
        assert!(
            touched > 50,
            "a 10% combined fault rate must touch messages, got {touched}/2000"
        );
        // A different seed gives a different schedule.
        let c = FaultInjector::new(FaultPlan::lossy_wire(secs(10), secs(20)), 8).unwrap();
        let differs = (0..2000u64).any(|id| {
            c.message_verdict(MessageId(id), secs(15)) != a.message_verdict(MessageId(id), secs(15))
        });
        assert!(differs, "seed must matter");
    }

    #[test]
    fn reorder_delay_stays_within_the_bound() {
        let bound = SimDuration::from_millis(50);
        let plan = FaultPlan {
            message: vec![MessageFault {
                start: SimTime::ZERO,
                end: SimTime::MAX,
                kind: MessageFaultKind::Reorder {
                    probability: 1.0,
                    bound,
                },
            }],
            ..FaultPlan::default()
        };
        let injector = FaultInjector::new(plan, 1).unwrap();
        for id in 0..500u64 {
            let v = injector.message_verdict(MessageId(id), secs(1));
            assert!(
                v.extra_delay > SimDuration::ZERO,
                "probability 1.0 always hits"
            );
            assert!(
                v.extra_delay.as_micros() <= bound.as_micros(),
                "delay {} exceeds bound",
                v.extra_delay.as_micros()
            );
        }
    }

    #[test]
    fn payload_corruption_flips_exactly_one_bit_deterministically() {
        let plan = FaultPlan {
            message: vec![MessageFault {
                start: SimTime::ZERO,
                end: SimTime::MAX,
                kind: MessageFaultKind::Corrupt { probability: 1.0 },
            }],
            ..FaultPlan::default()
        };
        let injector = FaultInjector::new(plan, 3).unwrap();
        let clean = vec![1.0f64, 2.0, 3.0];
        let mut a = Payload::record("t", clean.clone());
        let mut b = Payload::record("t", clean.clone());
        injector.corrupt_payload(MessageId(9), &mut a);
        injector.corrupt_payload(MessageId(9), &mut b);
        assert_eq!(a, b, "corruption must be deterministic");
        let Payload::Record { fields, .. } = &a else {
            panic!("record stays a record");
        };
        let flipped_bits: u32 = fields
            .iter()
            .zip(&clean)
            .map(|(x, y)| (x.to_bits() ^ y.to_bits()).count_ones())
            .sum();
        assert_eq!(flipped_bits, 1, "exactly one bit flips");
        // Bytes payloads flip one bit too; text degrades readably.
        let mut bytes = Payload::Bytes(vec![0u8; 16]);
        injector.corrupt_payload(MessageId(10), &mut bytes);
        let Payload::Bytes(b) = &bytes else { panic!() };
        assert_eq!(b.iter().map(|x| x.count_ones()).sum::<u32>(), 1);
        let mut text = Payload::Text("hello".into());
        injector.corrupt_payload(MessageId(11), &mut text);
        let Payload::Text(t) = &text else { panic!() };
        assert!(t.contains('?') && t.len() == 5, "{t}");
    }

    #[test]
    fn relay_outage_preset_downs_exactly_the_relay_window() {
        let plan = FaultPlan::relay_outage(2, secs(10), secs(20));
        assert!(plan.validate().is_ok());
        assert_eq!(plan.process.len(), 2);
        for relay in 0..2u32 {
            let id = NodeId(relay);
            assert!(!plan.node_down(id, secs(9)));
            assert!(plan.node_down(id, secs(10)));
            assert!(plan.node_down(id, secs(19)));
            assert!(!plan.node_down(id, secs(20)));
        }
        assert!(!plan.node_down(NodeId(2), secs(15)), "only relays crash");
        // A MAX end never restarts.
        let forever = FaultPlan::relay_outage(1, secs(5), SimTime::MAX);
        assert!(forever.node_down(NodeId(0), SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn next_crash_finds_the_earliest_pending_fault() {
        let plan = FaultPlan {
            process: vec![
                ProcessFault {
                    target: FaultTarget::Service,
                    at: secs(30),
                    restart_after: SimDuration::from_secs(5),
                },
                ProcessFault {
                    target: FaultTarget::Service,
                    at: secs(10),
                    restart_after: SimDuration::from_secs(5),
                },
                ProcessFault {
                    target: FaultTarget::Node(NodeId(2)),
                    at: secs(1),
                    restart_after: SimDuration::MAX,
                },
            ],
            ..FaultPlan::default()
        };
        let injector = FaultInjector::new(plan, 0).unwrap();
        let first = injector
            .next_crash(FaultTarget::Service, SimTime::ZERO)
            .unwrap();
        assert_eq!(first.at, secs(10));
        assert_eq!(first.restart_at(), secs(15));
        let second = injector.next_crash(FaultTarget::Service, secs(11)).unwrap();
        assert_eq!(second.at, secs(30));
        assert!(injector
            .next_crash(FaultTarget::Service, secs(31))
            .is_none());
        // A never-restarting node fault saturates at the horizon.
        let node = injector
            .next_crash(FaultTarget::Node(NodeId(2)), SimTime::ZERO)
            .unwrap();
        assert_eq!(node.restart_at(), SimTime::MAX);
    }

    #[test]
    fn storage_faults_truncate_flip_and_substitute() {
        let original: Vec<u8> = (0..100u8).collect();
        let previous: Vec<u8> = vec![0xEE; 40];

        let torn = FaultInjector::new(FaultPlan::torn_checkpoints(secs(0), secs(100)), 5).unwrap();
        let mut bytes = original.clone();
        let applied = torn.corrupt_checkpoint(&mut bytes, Some(&previous), secs(50), 0);
        assert_eq!(bytes.len(), 60, "keep_fraction 0.6 of 100 bytes");
        assert_eq!(bytes[..60], original[..60]);
        assert_eq!(applied.len(), 1);
        // Outside the window: untouched.
        let mut clean = original.clone();
        assert!(torn
            .corrupt_checkpoint(&mut clean, Some(&previous), secs(100), 0)
            .is_empty());
        assert_eq!(clean, original);

        let rot = FaultInjector::new(FaultPlan::bit_rot(secs(0), secs(100)), 5).unwrap();
        let mut a = original.clone();
        let mut b = original.clone();
        rot.corrupt_checkpoint(&mut a, None, secs(1), 7);
        rot.corrupt_checkpoint(&mut b, None, secs(1), 7);
        assert_eq!(a, b, "bit flips must be deterministic per label");
        let distance: u32 = a
            .iter()
            .zip(&original)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(distance, 1, "exactly one flipped bit");
        let mut c = original.clone();
        rot.corrupt_checkpoint(&mut c, None, secs(1), 8);
        assert_ne!(c, a, "different labels flip different bits");

        let stale = FaultInjector::new(
            FaultPlan {
                storage: vec![StorageFault {
                    start: secs(0),
                    end: SimTime::MAX,
                    kind: StorageFaultKind::StaleVersion,
                }],
                ..FaultPlan::default()
            },
            5,
        )
        .unwrap();
        let mut bytes = original.clone();
        stale.corrupt_checkpoint(&mut bytes, Some(&previous), secs(1), 0);
        assert_eq!(bytes, previous, "write replaced by the stale version");
        // With no previous version the substitution is a no-op.
        let mut bytes = original.clone();
        stale.corrupt_checkpoint(&mut bytes, None, secs(1), 0);
        assert_eq!(bytes, original);
    }
}
