//! Pluggable latency and loss models for the simulated network.

use crate::rng::SimRng;
use crate::time::SimDuration;
use crate::NodeId;

/// Computes the one-way delay of a message between two nodes.
///
/// Implementations must be deterministic given the `rng` stream.
pub trait LatencyModel: std::fmt::Debug + Send {
    /// Delay applied to a message from `from` to `to`.
    fn delay(&self, from: NodeId, to: NodeId, rng: &mut SimRng) -> SimDuration;
}

/// Decides whether a message is dropped in transit.
pub trait LossModel: std::fmt::Debug + Send {
    /// Returns `true` if the message is lost.
    fn is_lost(&self, from: NodeId, to: NodeId, rng: &mut SimRng) -> bool;
}

/// Constant delay for every pair — the simplest, fully predictable model.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLatency(pub SimDuration);

impl LatencyModel for ConstantLatency {
    fn delay(&self, _from: NodeId, _to: NodeId, _rng: &mut SimRng) -> SimDuration {
        self.0
    }
}

/// Uniformly distributed delay in `[min, max]`.
#[derive(Debug, Clone, Copy)]
pub struct UniformLatency {
    /// Lower bound (inclusive).
    pub min: SimDuration,
    /// Upper bound (inclusive).
    pub max: SimDuration,
}

impl UniformLatency {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: SimDuration, max: SimDuration) -> Self {
        assert!(min <= max, "min latency must not exceed max");
        UniformLatency { min, max }
    }
}

impl LatencyModel for UniformLatency {
    fn delay(&self, _from: NodeId, _to: NodeId, rng: &mut SimRng) -> SimDuration {
        let us = rng.gen_range(self.min.as_micros()..=self.max.as_micros());
        SimDuration::from_micros(us)
    }
}

/// Log-normal-ish WAN latency: a base plus an exponential tail, the classic
/// shape of internet RTT distributions. Keeps everything integer-safe.
#[derive(Debug, Clone, Copy)]
pub struct WanLatency {
    /// Minimum (propagation) delay.
    pub base: SimDuration,
    /// Mean of the additional exponential component.
    pub tail_mean: SimDuration,
}

impl LatencyModel for WanLatency {
    fn delay(&self, _from: NodeId, _to: NodeId, rng: &mut SimRng) -> SimDuration {
        let tail_mean_s = self.tail_mean.as_secs_f64();
        let extra = if tail_mean_s > 0.0 {
            SimDuration::from_secs_f64(rng.gen_exp(1.0 / tail_mean_s))
        } else {
            SimDuration::ZERO
        };
        self.base + extra
    }
}

/// No losses.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn is_lost(&self, _from: NodeId, _to: NodeId, _rng: &mut SimRng) -> bool {
        false
    }
}

/// Independent per-message loss with fixed probability.
#[derive(Debug, Clone, Copy)]
pub struct BernoulliLoss(pub f64);

impl BernoulliLoss {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        BernoulliLoss(p)
    }
}

impl LossModel for BernoulliLoss {
    fn is_lost(&self, _from: NodeId, _to: NodeId, rng: &mut SimRng) -> bool {
        rng.gen_bool(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_latency_is_constant() {
        let m = ConstantLatency(SimDuration::from_millis(10));
        let mut rng = SimRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(
                m.delay(NodeId(0), NodeId(1), &mut rng),
                SimDuration::from_millis(10)
            );
        }
    }

    #[test]
    fn uniform_latency_stays_in_bounds() {
        let m = UniformLatency::new(SimDuration::from_millis(5), SimDuration::from_millis(15));
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = m.delay(NodeId(0), NodeId(1), &mut rng);
            assert!(d >= SimDuration::from_millis(5) && d <= SimDuration::from_millis(15));
        }
    }

    #[test]
    #[should_panic(expected = "min latency")]
    fn uniform_latency_rejects_inverted_bounds() {
        let _ = UniformLatency::new(SimDuration::from_millis(2), SimDuration::from_millis(1));
    }

    #[test]
    fn wan_latency_exceeds_base() {
        let m = WanLatency {
            base: SimDuration::from_millis(20),
            tail_mean: SimDuration::from_millis(10),
        };
        let mut rng = SimRng::seed_from_u64(2);
        let mut total = 0.0;
        for _ in 0..2000 {
            let d = m.delay(NodeId(0), NodeId(1), &mut rng);
            assert!(d >= SimDuration::from_millis(20));
            total += d.as_secs_f64();
        }
        let mean = total / 2000.0;
        assert!((mean - 0.030).abs() < 0.003, "mean {mean} should be ≈ 30ms");
    }

    #[test]
    fn bernoulli_loss_rate_matches() {
        let m = BernoulliLoss::new(0.25);
        let mut rng = SimRng::seed_from_u64(3);
        let lost = (0..10_000)
            .filter(|_| m.is_lost(NodeId(0), NodeId(1), &mut rng))
            .count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn no_loss_never_drops() {
        let mut rng = SimRng::seed_from_u64(4);
        assert!(!NoLoss.is_lost(NodeId(0), NodeId(1), &mut rng));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn bernoulli_rejects_out_of_range() {
        let _ = BernoulliLoss::new(1.5);
    }
}
