//! Deterministic randomness for simulations.
//!
//! All stochastic choices in the workspace flow through [`SimRng`], a thin
//! newtype over a self-contained ChaCha8 block cipher in counter mode.
//! ChaCha has a stability guarantee across versions (unlike generators
//! whose algorithm may change under us), which is what makes
//! `(seed, config)` a complete description of an experiment run. The
//! implementation is vendored here so the workspace builds with zero
//! external dependencies.

use std::ops::{Range, RangeInclusive};

/// The ChaCha8 keystream generator: 256-bit key, 64-bit block counter,
/// producing 16 words (64 bytes) per block with 8 rounds.
#[derive(Debug, Clone)]
struct ChaCha8 {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means the buffer is exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8 {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn new(key: [u32; 8]) -> Self {
        ChaCha8 {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round: 4 column rounds + 4 diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

/// SplitMix64 step, used to expand a 64-bit seed into key material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable, reproducible random number generator.
///
/// ```
/// use tsn_simnet::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng(ChaCha8);

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut s);
            pair[0] = word as u32;
            if let Some(hi) = pair.get_mut(1) {
                *hi = (word >> 32) as u32;
            }
        }
        SimRng(ChaCha8::new(key))
    }

    /// Derives an independent child generator.
    ///
    /// Each subsystem (network, churn, behaviour models, …) receives its own
    /// fork, so adding randomness consumption to one subsystem does not
    /// perturb the stream seen by another — runs stay comparable across
    /// code changes.
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix the label into a fresh seed drawn from this stream.
        let base = self.next_u64();
        SimRng::seed_from_u64(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Derives the `stream`-th independent generator of a seed's stream
    /// family, *statelessly*: unlike [`SimRng::fork`] no draw is consumed
    /// from any parent, so `(seed, stream)` fully determines the stream
    /// regardless of who created it, when, or on which thread.
    ///
    /// This is the shard-parallel splitting primitive: the sharded
    /// scenario engine gives every `(round, node)` pair its own stream,
    /// which makes the draw sequence independent of the shard count and
    /// of execution order — the property behind "k shards, bit-identical
    /// outcomes".
    ///
    /// Structured labels (e.g. `round << 32 | node`) are safe: the label
    /// passes through SplitMix64 before touching the seed, so adjacent
    /// labels land in unrelated key material.
    pub fn stream(seed: u64, stream: u64) -> SimRng {
        let mut label = stream;
        let mixed = splitmix64(&mut label);
        let mut s = seed ^ mixed;
        SimRng::seed_from_u64(splitmix64(&mut s))
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.0.next_u32() as u64;
        let hi = self.0.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform sample from an integer range, e.g. `rng.gen_range(0..10)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Unbiased uniform draw in `[0, span)` via rejection sampling.
    fn gen_below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span == 1 {
            return 0;
        }
        // Reject draws from the final partial copy of [0, span).
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % span;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits → the standard [0,1) mantissa construction.
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.gen_f64() < p
    }

    /// Standard-normal sample via Box–Muller (avoids a dependency on
    /// a distributions crate for the one distribution the simulator
    /// needs).
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.gen_f64();
        let u2 = self.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Exponential sample with the given rate (`rate > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn gen_exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.gen_f64();
        -u.ln() / rate
    }

    /// Pareto sample (heavy-tailed; used for power-law session lengths and
    /// content popularity). `shape > 0`, `scale > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` or `scale` is not strictly positive.
    pub fn gen_pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(
            shape > 0.0 && scale > 0.0,
            "pareto parameters must be positive"
        );
        let u = 1.0 - self.gen_f64();
        scale / u.powf(1.0 / shape)
    }

    /// Chooses one element of a non-empty slice uniformly.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.gen_range(0..items.len());
            Some(&items[i])
        }
    }

    /// Samples an index from a weight vector (weights need not be
    /// normalized; non-finite or negative weights count as zero).
    ///
    /// Returns `None` when all weights are zero or the slice is empty.
    pub fn choose_weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
        let total: f64 = weights.iter().copied().map(clean).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            let w = clean(w);
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point round-off: fall back to the last positive weight.
        weights.iter().rposition(|&w| clean(w) > 0.0)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

/// Integer ranges [`SimRng::gen_range`] accepts, mirroring the familiar
/// calling convention of mainstream RNG crates for the types the
/// workspace uses.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut SimRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.gen_below(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.gen_below(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn stream_is_reproducible_and_nondegenerate() {
        let mut rng = SimRng::seed_from_u64(42);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> = {
            let mut rng = SimRng::seed_from_u64(42);
            (0..4).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(first, again);
        assert!(first.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut root1 = SimRng::seed_from_u64(9);
        let mut root2 = SimRng::seed_from_u64(9);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut g1 = root1.fork(2);
        assert_ne!(f1.next_u64(), g1.next_u64());
    }

    #[test]
    fn streams_are_stateless_deterministic_and_distinct() {
        // Same (seed, stream) → same draws, no matter what else ran.
        let mut a = SimRng::stream(7, 3);
        let _ = SimRng::stream(7, 99).next_u64(); // unrelated stream
        let mut b = SimRng::stream(7, 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Adjacent structured labels (round << 32 | node) diverge.
        let mut streams: Vec<u64> = (0..64u64)
            .map(|i| SimRng::stream(7, (i / 8) << 32 | (i % 8)).next_u64())
            .collect();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), 64, "no first-draw collisions");
        // Different seeds give different stream families.
        assert_ne!(
            SimRng::stream(1, 0).next_u64(),
            SimRng::stream(2, 0).next_u64()
        );
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = SimRng::seed_from_u64(12);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 appear");
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_normal(3.0, 2.0)).sum::<f64>() / n as f64;
        assert!(
            (mean - 3.0).abs() < 0.1,
            "sample mean {mean} too far from 3.0"
        );
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = SimRng::seed_from_u64(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_exp(2.0)).sum::<f64>() / n as f64;
        assert!(
            (mean - 0.5).abs() < 0.05,
            "sample mean {mean} too far from 0.5"
        );
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(rng.gen_pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn weighted_choice_follows_weights() {
        let mut rng = SimRng::seed_from_u64(8);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.choose_weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio} too far from 3");
    }

    #[test]
    fn weighted_choice_degenerate_cases() {
        let mut rng = SimRng::seed_from_u64(9);
        assert_eq!(rng.choose_weighted_index(&[]), None);
        assert_eq!(rng.choose_weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.choose_weighted_index(&[f64::NAN, 0.0]), None);
        assert_eq!(rng.choose_weighted_index(&[0.0, 5.0]), Some(1));
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = SimRng::seed_from_u64(10);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
