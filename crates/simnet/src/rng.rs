//! Deterministic randomness for simulations.
//!
//! All stochastic choices in the workspace flow through [`SimRng`], a thin
//! newtype over ChaCha8. ChaCha has a stability guarantee across versions
//! (unlike `rand::rngs::StdRng`, whose algorithm may change), which is what
//! makes `(seed, config)` a complete description of an experiment run.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seedable, reproducible random number generator.
///
/// ```
/// use tsn_simnet::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng(ChaCha8Rng);

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng(ChaCha8Rng::seed_from_u64(seed))
    }

    /// Derives an independent child generator.
    ///
    /// Each subsystem (network, churn, behaviour models, …) receives its own
    /// fork, so adding randomness consumption to one subsystem does not
    /// perturb the stream seen by another — runs stay comparable across
    /// code changes.
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix the label into a fresh seed drawn from this stream.
        let base = self.0.next_u64();
        SimRng::seed_from_u64(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.0.gen_range(range)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.0.gen_bool(p)
    }

    /// Standard-normal sample via Box–Muller (avoids a dependency on
    /// `rand_distr` for the one distribution the simulator needs).
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.gen_f64();
        let u2 = self.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Exponential sample with the given rate (`rate > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn gen_exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.gen_f64();
        -u.ln() / rate
    }

    /// Pareto sample (heavy-tailed; used for power-law session lengths and
    /// content popularity). `shape > 0`, `scale > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` or `scale` is not strictly positive.
    pub fn gen_pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(shape > 0.0 && scale > 0.0, "pareto parameters must be positive");
        let u = 1.0 - self.gen_f64();
        scale / u.powf(1.0 / shape)
    }

    /// Chooses one element of a non-empty slice uniformly.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.gen_range(0..items.len());
            Some(&items[i])
        }
    }

    /// Samples an index from a weight vector (weights need not be
    /// normalized; non-finite or negative weights count as zero).
    ///
    /// Returns `None` when all weights are zero or the slice is empty.
    pub fn choose_weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
        let total: f64 = weights.iter().copied().map(clean).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            let w = clean(w);
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point round-off: fall back to the last positive weight.
        weights.iter().rposition(|&w| clean(w) > 0.0)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut root1 = SimRng::seed_from_u64(9);
        let mut root2 = SimRng::seed_from_u64(9);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut g1 = root1.fork(2);
        assert_ne!(f1.next_u64(), g1.next_u64());
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn normal_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_normal(3.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "sample mean {mean} too far from 3.0");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = SimRng::seed_from_u64(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "sample mean {mean} too far from 0.5");
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(rng.gen_pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn weighted_choice_follows_weights() {
        let mut rng = SimRng::seed_from_u64(8);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.choose_weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio} too far from 3");
    }

    #[test]
    fn weighted_choice_degenerate_cases() {
        let mut rng = SimRng::seed_from_u64(9);
        assert_eq!(rng.choose_weighted_index(&[]), None);
        assert_eq!(rng.choose_weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.choose_weighted_index(&[f64::NAN, 0.0]), None);
        assert_eq!(rng.choose_weighted_index(&[0.0, 5.0]), Some(1));
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = SimRng::seed_from_u64(10);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
