//! Length-prefixed binary encoding for checkpoint payloads.
//!
//! The online [`TrustService`] (crate `tsn-service`) snapshots its full
//! state so long runs can pause and resume *bit-identically*. That rules
//! out text formats: the workspace's hand-rolled JSON emitter
//! (`tsn_core::json`) is write-only, and round-tripping `f64`s through
//! decimal strings is exactly the kind of low-bit drift the determinism
//! discipline (DESIGN.md §4) forbids. So checkpoints use this tiny
//! binary codec instead — still zero external dependencies:
//!
//! * all integers are little-endian fixed width;
//! * `f64`s travel as their IEEE-754 bit pattern ([`f64::to_bits`]), so
//!   encode → decode is the identity on every value including negative
//!   zero and NaN payloads;
//! * variable-length data (byte blobs, sequences) carries a `u64` length
//!   prefix, read back with bounds checks — a truncated or corrupt
//!   checkpoint fails with an error, never a panic or a wild read.
//!
//! The codec deliberately has no schema or field names: framing,
//! versioning and layout belong to the caller (the service writes a
//! magic + version header and refuses unknown versions).
//!
//! [`TrustService`]: https://docs.rs/tsn-service

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) lookup
/// table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 checksum (IEEE) of `bytes`.
///
/// Used to frame journal records and checkpoint sections: a CRC-32
/// detects *every* single-bit flip (and all burst errors up to 32 bits)
/// in the checksummed payload, which is exactly the corruption class the
/// storage fault model injects.
///
/// ```
/// use tsn_simnet::codec::crc32;
///
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926); // the IEEE check value
/// assert_ne!(crc32(b"journal"), crc32(b"jOurnal"));
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Appends fixed-width and length-prefixed values to a byte buffer.
///
/// ```
/// use tsn_simnet::codec::{ByteReader, ByteWriter};
///
/// let mut w = ByteWriter::new();
/// w.put_u64(7);
/// w.put_f64(-0.0);
/// let bytes = w.finish();
/// let mut r = ByteReader::new(&bytes);
/// assert_eq!(r.take_u64().unwrap(), 7);
/// assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `u64`-length-prefixed byte blob.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads values written by [`ByteWriter`], with bounds checking.
///
/// Every `take_*` returns `Err` (naming what was expected and where)
/// instead of panicking when the input is shorter than the read — the
/// decode path for untrusted checkpoint files.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Name of the logical section being decoded, included in
    /// out-of-bounds errors so a truncated checkpoint names *where* it
    /// broke, not just that it did.
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice for reading from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader {
            buf,
            pos: 0,
            context: "",
        }
    }

    /// Labels the bytes read from here on as belonging to `section`.
    /// Every subsequent out-of-bounds error names the section alongside
    /// the byte offset; pass `""` to clear.
    pub fn set_context(&mut self, section: &'static str) {
        self.context = section;
    }

    /// The current read offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => {
                let section = if self.context.is_empty() {
                    String::new()
                } else {
                    format!(" in section '{}'", self.context)
                };
                Err(format!(
                    "truncated input: wanted {n} bytes for {what}{section} at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                ))
            }
        }
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, String> {
        let b = self.take(4, "u32")?;
        // tsn-lint: allow(no-unwrap, "need(4) verified the remaining length; the slice is exactly four bytes")
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, String> {
        let b = self.take(8, "u64")?;
        // tsn-lint: allow(no-unwrap, "need(8) verified the remaining length; the slice is exactly eight bytes")
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `u64`-length-prefixed byte blob. The declared length is
    /// bounds-checked against the remaining input before any slicing.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], String> {
        let len = self.take_u64()?;
        let len = usize::try_from(len).map_err(|_| format!("blob length {len} overflows usize"))?;
        self.take(len, "length-prefixed bytes")
    }

    /// Reads a `u64` sequence length, validating it against a per-element
    /// minimum size so corrupt headers cannot trigger huge allocations.
    pub fn take_seq_len(&mut self, min_element_bytes: usize) -> Result<usize, String> {
        let len = self.take_u64()?;
        let len = usize::try_from(len).map_err(|_| format!("sequence length {len} overflows"))?;
        let need = len.saturating_mul(min_element_bytes.max(1));
        if need > self.remaining() {
            return Err(format!(
                "corrupt sequence length {len}: needs at least {need} bytes, {} remain",
                self.remaining()
            ));
        }
        Ok(len)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_type_bit_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_f64(1.0 / 3.0);
        w.put_bytes(b"checkpoint");
        w.put_bytes(b"");
        let bytes = w.finish();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.take_f64().unwrap(), 1.0 / 3.0);
        assert_eq!(r.take_bytes().unwrap(), b"checkpoint");
        assert_eq!(r.take_bytes().unwrap(), b"");
        assert!(r.is_empty());
    }

    #[test]
    fn crc32_matches_the_ieee_check_value_and_detects_bit_flips() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Every single-bit flip of a small payload changes the CRC.
        let payload = b"epoch 7: 42 events".to_vec();
        let reference = crc32(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut flipped = payload.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn reader_context_names_the_section_and_offset() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        r.set_context("mechanism");
        assert_eq!(r.take_u8().unwrap(), 1);
        let err = r.take_u64().unwrap_err();
        assert!(err.contains("section 'mechanism'"), "{err}");
        assert!(err.contains("offset 1"), "{err}");
        // Clearing the context drops the section clause.
        r.set_context("");
        let err = r.take_u64().unwrap_err();
        assert!(!err.contains("section"), "{err}");
        assert_eq!(r.position(), 1);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        let err = r.take_u64().unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        // Position is unchanged after a failed read.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.take_u8().unwrap(), 1);
    }

    #[test]
    fn corrupt_blob_length_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims a blob longer than the input
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert!(r.take_bytes().is_err());
    }

    #[test]
    fn corrupt_sequence_length_is_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(1 << 60);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        let err = r.take_seq_len(8).unwrap_err();
        assert!(err.contains("corrupt sequence length"), "{err}");
    }

    #[test]
    fn seq_len_accepts_exact_fit() {
        let mut w = ByteWriter::new();
        w.put_u64(3);
        for i in 0..3u64 {
            w.put_u64(i);
        }
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        let len = r.take_seq_len(8).unwrap();
        assert_eq!(len, 3);
        for i in 0..3u64 {
            assert_eq!(r.take_u64().unwrap(), i);
        }
    }
}
