//! # tsn-simnet — deterministic discrete-event simulator for P2P networks
//!
//! This crate is the *substrate* on which the `tsn` reproduction of
//! "Trust your Social Network According to Satisfaction, Reputation and
//! Privacy" (Busnel, Serrano-Alvarado, Lamarre, 2010) runs. The paper argues
//! for fully decentralized social networks; since no live deployment is
//! available, every experiment in the repository executes on this simulator.
//!
//! The simulator is:
//!
//! * **discrete-event** — a virtual clock ([`SimTime`]) advances from event
//!   to event through a priority queue ([`EventQueue`]);
//! * **deterministic** — all randomness flows through a seedable
//!   [`SimRng`] (ChaCha-based), so a `(seed, config)` pair reproduces a run
//!   bit-for-bit;
//! * **message-passing** — nodes ([`NodeId`]) exchange [`Envelope`]s through
//!   a [`Network`] that applies a pluggable [`LatencyModel`] and
//!   [`LossModel`];
//! * **churn-aware** — the [`churn`] module drives joins, leaves, crashes
//!   and whitewashing re-joins, the lifecycle vocabulary of the reputation
//!   literature the paper builds on;
//! * **dynamic** — a [`DynamicsPlan`] composes churn, scheduled
//!   partitions and regional latency into one schedule that a
//!   [`DynamicsRuntime`] executes against the network on the sim clock
//!   (see the [`dynamics`] module);
//! * **fault-injectable** — a [`FaultPlan`] schedules message, process
//!   and storage faults deterministically from the seed, executed by a
//!   [`FaultInjector`] attached to the network and to the service's
//!   storage layer (see the [`faults`] module);
//! * **partially visible** — the [`membership`] module provides the
//!   peer-sampling overlay of the source paper: bounded
//!   [`PartialView`]s per node, refreshed by deterministic view
//!   shuffling and bootstrapped through killable relay nodes, so
//!   higher layers can select partners from local views instead of the
//!   global population.
//!
//! ## Quick example
//!
//! ```
//! use tsn_simnet::{Simulation, SimDuration, SimTime, SimRng, NodeId};
//!
//! let mut sim = Simulation::new(SimRng::seed_from_u64(42));
//! let a = sim.add_node();
//! let b = sim.add_node();
//! sim.schedule_in(SimDuration::from_millis(5), move |sim| {
//!     sim.network_mut().send(a, b, "hello".into());
//! });
//! let report = sim.run_until(SimTime::from_secs(1));
//! assert!(report.events_processed >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod codec;
pub mod dynamics;
pub mod event;
pub mod faults;
pub mod latency;
pub mod membership;
pub mod message;
pub mod metrics;
pub mod network;
pub mod partition;
pub mod pool;
pub mod rng;
pub mod sim;
pub mod streams;
pub mod time;
pub mod trace;

pub use churn::{ChurnConfig, ChurnEvent, ChurnProcess, NodeLifecycle};
pub use codec::{ByteReader, ByteWriter};
pub use dynamics::{DynamicsEvent, DynamicsPlan, DynamicsRuntime, PartitionWindow, RegionPlan};
pub use event::{Event, EventId, EventQueue, ScheduledEvent};
pub use faults::{
    FaultInjector, FaultPlan, FaultTarget, MessageFault, MessageFaultKind, MessageVerdict,
    ProcessFault, StorageFault, StorageFaultKind,
};
pub use latency::{
    BernoulliLoss, ConstantLatency, LatencyModel, LossModel, NoLoss, UniformLatency, WanLatency,
};
pub use membership::{
    MembershipConfig, MembershipRuntime, PartialView, ShuffleStats, ViewEntry, MEMBERSHIP_SEED_SALT,
};
pub use message::{Envelope, MessageId, Payload, Tag};
pub use metrics::{Counter, Histogram, MetricSet};
pub use network::{DeliveryOutcome, Network, NetworkConfig, NetworkStats};
pub use partition::{GroupMap, PartitionedLoss, RegionalLatency};
pub use pool::BufferPool;
pub use rng::SimRng;
pub use sim::{RunReport, Simulation, StopCondition};
pub use streams::{StreamDomain, StreamFamily};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceKind, TraceLog};

/// Identifier of a simulated node (participant / peer).
///
/// `NodeId`s are dense indices handed out by [`Simulation::add_node`] (or by
/// higher layers that manage their own populations); they index directly
/// into per-node vectors throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        // tsn-lint: allow(no-unwrap, "documented contract: from_index panics past u32::MAX nodes, far beyond any supported scale")
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(NodeId::from(17u32), id);
        assert_eq!(id.to_string(), "n17");
    }

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5), NodeId(5));
    }
}
