//! Network partitions and regional topologies.
//!
//! Decentralized social networks run across administrative and
//! geographic boundaries; partitions (and the slow links around them)
//! are the failure mode that distinguishes a deployment from a LAN
//! demo. [`PartitionedLoss`] drops cross-group traffic entirely
//! (a clean split) or probabilistically (a lossy border);
//! [`RegionalLatency`] makes cross-region links slower than local ones.

use crate::latency::{LatencyModel, LossModel};
use crate::rng::SimRng;
use crate::time::SimDuration;
use crate::NodeId;

/// Group assignment used by the partition-aware models.
///
/// Nodes map to a group id; unassigned nodes (index beyond the vector)
/// fall into group 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMap {
    groups: Vec<u16>,
}

impl GroupMap {
    /// Builds a map from explicit assignments.
    pub fn new(groups: Vec<u16>) -> Self {
        GroupMap { groups }
    }

    /// Splits `n` nodes into `k` contiguous, equally sized groups.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn contiguous(n: usize, k: usize) -> Self {
        assert!(k > 0, "need at least one group");
        let size = n.div_ceil(k);
        GroupMap {
            groups: (0..n).map(|i| (i / size) as u16).collect(),
        }
    }

    /// The group of a node.
    pub fn group(&self, node: NodeId) -> u16 {
        self.groups.get(node.index()).copied().unwrap_or(0)
    }

    /// Whether two nodes share a group.
    pub fn same_group(&self, a: NodeId, b: NodeId) -> bool {
        self.group(a) == self.group(b)
    }

    /// Number of assigned nodes.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Drops cross-group messages with a configurable probability
/// (1.0 = full partition).
#[derive(Debug, Clone)]
pub struct PartitionedLoss {
    map: GroupMap,
    /// Loss probability for cross-group messages.
    pub cross_loss: f64,
    /// Loss probability for intra-group messages.
    pub intra_loss: f64,
}

impl PartitionedLoss {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(map: GroupMap, cross_loss: f64, intra_loss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cross_loss),
            "cross_loss must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&intra_loss),
            "intra_loss must be in [0,1]"
        );
        PartitionedLoss {
            map,
            cross_loss,
            intra_loss,
        }
    }

    /// A clean split: cross-group traffic never arrives.
    pub fn full_partition(map: GroupMap) -> Self {
        PartitionedLoss::new(map, 1.0, 0.0)
    }
}

impl LossModel for PartitionedLoss {
    fn is_lost(&self, from: NodeId, to: NodeId, rng: &mut SimRng) -> bool {
        let p = if self.map.same_group(from, to) {
            self.intra_loss
        } else {
            self.cross_loss
        };
        rng.gen_bool(p)
    }
}

/// Constant latency that differs within vs across regions.
#[derive(Debug, Clone)]
pub struct RegionalLatency {
    map: GroupMap,
    /// Delay within a region.
    pub intra: SimDuration,
    /// Delay across regions.
    pub inter: SimDuration,
}

impl RegionalLatency {
    /// Creates the model.
    pub fn new(map: GroupMap, intra: SimDuration, inter: SimDuration) -> Self {
        RegionalLatency { map, intra, inter }
    }
}

impl LatencyModel for RegionalLatency {
    fn delay(&self, from: NodeId, to: NodeId, _rng: &mut SimRng) -> SimDuration {
        if self.map.same_group(from, to) {
            self.intra
        } else {
            self.inter
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, NetworkConfig};
    use crate::time::SimTime;

    #[test]
    fn contiguous_groups_split_evenly() {
        let map = GroupMap::contiguous(10, 2);
        assert_eq!(map.group(NodeId(0)), 0);
        assert_eq!(map.group(NodeId(4)), 0);
        assert_eq!(map.group(NodeId(5)), 1);
        assert_eq!(map.group(NodeId(9)), 1);
        assert!(map.same_group(NodeId(0), NodeId(4)));
        assert!(!map.same_group(NodeId(4), NodeId(5)));
        assert_eq!(map.len(), 10);
    }

    #[test]
    fn unassigned_nodes_default_to_group_zero() {
        let map = GroupMap::new(vec![1, 1]);
        assert_eq!(map.group(NodeId(7)), 0);
    }

    #[test]
    fn full_partition_blocks_cross_traffic_only() {
        let map = GroupMap::contiguous(4, 2);
        let model = PartitionedLoss::full_partition(map);
        let mut rng = SimRng::seed_from_u64(0);
        assert!(
            model.is_lost(NodeId(0), NodeId(2), &mut rng),
            "cross-group always lost"
        );
        assert!(
            !model.is_lost(NodeId(0), NodeId(1), &mut rng),
            "intra-group never lost"
        );
    }

    #[test]
    fn partial_border_loss_matches_probability() {
        let map = GroupMap::contiguous(4, 2);
        let model = PartitionedLoss::new(map, 0.3, 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        let lost = (0..10_000)
            .filter(|_| model.is_lost(NodeId(0), NodeId(3), &mut rng))
            .count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "border loss {rate}");
    }

    #[test]
    fn regional_latency_differs() {
        let map = GroupMap::contiguous(4, 2);
        let model = RegionalLatency::new(
            map,
            SimDuration::from_millis(5),
            SimDuration::from_millis(80),
        );
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(
            model.delay(NodeId(0), NodeId(1), &mut rng),
            SimDuration::from_millis(5)
        );
        assert_eq!(
            model.delay(NodeId(1), NodeId(2), &mut rng),
            SimDuration::from_millis(80)
        );
    }

    #[test]
    fn partitioned_network_end_to_end() {
        let map = GroupMap::contiguous(4, 2);
        let config = NetworkConfig {
            latency: Box::new(RegionalLatency::new(
                map.clone(),
                SimDuration::from_millis(1),
                SimDuration::from_millis(1),
            )),
            loss: Box::new(PartitionedLoss::full_partition(map)),
        };
        let mut net = Network::new(config, SimRng::seed_from_u64(3));
        for _ in 0..4 {
            net.add_node();
        }
        net.send(NodeId(0), NodeId(1), "local".into());
        net.send(NodeId(0), NodeId(3), "remote".into());
        net.advance_to(SimTime::from_secs(1));
        assert_eq!(net.inbox_len(NodeId(1)), 1);
        assert_eq!(net.inbox_len(NodeId(3)), 0);
        assert_eq!(net.stats().dropped.value(), 1);
    }

    #[test]
    #[should_panic(expected = "cross_loss")]
    fn invalid_probability_panics() {
        let _ = PartitionedLoss::new(GroupMap::contiguous(2, 1), 1.5, 0.0);
    }
}
