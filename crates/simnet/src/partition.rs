//! Network partitions and regional topologies.
//!
//! Decentralized social networks run across administrative and
//! geographic boundaries; partitions (and the slow links around them)
//! are the failure mode that distinguishes a deployment from a LAN
//! demo. [`PartitionedLoss`] drops cross-group traffic entirely
//! (a clean split) or probabilistically (a lossy border);
//! [`RegionalLatency`] makes cross-region links slower than local ones.

use crate::latency::{LatencyModel, LossModel};
use crate::rng::SimRng;
use crate::time::SimDuration;
use crate::NodeId;

/// Group assignment used by the partition-aware models.
///
/// Nodes map to a group id; unassigned nodes (index beyond the vector)
/// fall into group 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMap {
    groups: Vec<u16>,
}

impl GroupMap {
    /// Builds a map from explicit assignments.
    pub fn new(groups: Vec<u16>) -> Self {
        GroupMap { groups }
    }

    /// Splits `n` nodes into exactly `k` contiguous groups whose sizes
    /// differ by at most one: the first `n % k` groups get
    /// `n / k + 1` nodes, the rest `n / k`.
    ///
    /// (The former `div_ceil` sizing could produce *fewer* than `k`
    /// groups — `contiguous(9, 4)` yielded 3 groups of 3 — and badly
    /// unbalanced tails; now `contiguous(9, 4)` is `[3, 2, 2, 2]`.)
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn contiguous(n: usize, k: usize) -> Self {
        assert!(k > 0, "need at least one group");
        let base = n / k;
        let remainder = n % k;
        // The first `remainder` groups are one node larger.
        let big_span = remainder * (base + 1);
        GroupMap {
            groups: (0..n)
                .map(|i| {
                    let g = if i < big_span {
                        i / (base + 1)
                    } else {
                        remainder + (i - big_span) / base
                    };
                    g as u16
                })
                .collect(),
        }
    }

    /// The group of a node.
    pub fn group(&self, node: NodeId) -> u16 {
        self.groups.get(node.index()).copied().unwrap_or(0)
    }

    /// Whether two nodes share a group.
    pub fn same_group(&self, a: NodeId, b: NodeId) -> bool {
        self.group(a) == self.group(b)
    }

    /// Number of assigned nodes.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of distinct (non-empty) groups among the assigned nodes.
    pub fn group_count(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        seen.extend(self.groups.iter().copied());
        seen.len()
    }

    /// Size of each group, indexed by group id (trailing empty groups
    /// are not represented).
    pub fn group_sizes(&self) -> Vec<usize> {
        let max = self.groups.iter().copied().max().map_or(0, usize::from);
        let mut sizes = vec![0usize; max + 1];
        for &g in &self.groups {
            sizes[usize::from(g)] += 1;
        }
        sizes
    }

    /// The probability that two uniformly random assigned nodes share a
    /// group: `Σ (size_g / n)²`. This is the "partition health" a clean
    /// split degrades — 1.0 for a single group, `1/k` for `k` equal
    /// groups.
    pub fn connectivity(&self) -> f64 {
        let n = self.groups.len();
        if n == 0 {
            return 1.0;
        }
        self.group_sizes()
            .iter()
            .map(|&s| {
                let f = s as f64 / n as f64;
                f * f
            })
            .sum()
    }
}

/// Drops cross-group messages with a configurable probability
/// (1.0 = full partition).
#[derive(Debug, Clone)]
pub struct PartitionedLoss {
    map: GroupMap,
    /// Loss probability for cross-group messages.
    pub cross_loss: f64,
    /// Loss probability for intra-group messages.
    pub intra_loss: f64,
}

impl PartitionedLoss {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(map: GroupMap, cross_loss: f64, intra_loss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cross_loss),
            "cross_loss must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&intra_loss),
            "intra_loss must be in [0,1]"
        );
        PartitionedLoss {
            map,
            cross_loss,
            intra_loss,
        }
    }

    /// A clean split: cross-group traffic never arrives.
    pub fn full_partition(map: GroupMap) -> Self {
        PartitionedLoss::new(map, 1.0, 0.0)
    }
}

impl LossModel for PartitionedLoss {
    fn is_lost(&self, from: NodeId, to: NodeId, rng: &mut SimRng) -> bool {
        let p = if self.map.same_group(from, to) {
            self.intra_loss
        } else {
            self.cross_loss
        };
        rng.gen_bool(p)
    }
}

/// Constant latency that differs within vs across regions.
#[derive(Debug, Clone)]
pub struct RegionalLatency {
    map: GroupMap,
    /// Delay within a region.
    pub intra: SimDuration,
    /// Delay across regions.
    pub inter: SimDuration,
}

impl RegionalLatency {
    /// Creates the model.
    pub fn new(map: GroupMap, intra: SimDuration, inter: SimDuration) -> Self {
        RegionalLatency { map, intra, inter }
    }
}

impl LatencyModel for RegionalLatency {
    fn delay(&self, from: NodeId, to: NodeId, _rng: &mut SimRng) -> SimDuration {
        if self.map.same_group(from, to) {
            self.intra
        } else {
            self.inter
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, NetworkConfig};
    use crate::time::SimTime;

    #[test]
    fn contiguous_groups_split_evenly() {
        let map = GroupMap::contiguous(10, 2);
        assert_eq!(map.group(NodeId(0)), 0);
        assert_eq!(map.group(NodeId(4)), 0);
        assert_eq!(map.group(NodeId(5)), 1);
        assert_eq!(map.group(NodeId(9)), 1);
        assert!(map.same_group(NodeId(0), NodeId(4)));
        assert!(!map.same_group(NodeId(4), NodeId(5)));
        assert_eq!(map.len(), 10);
    }

    #[test]
    fn contiguous_produces_exactly_k_balanced_groups() {
        // Regression: div_ceil sizing gave contiguous(9, 4) only THREE
        // groups ([3,3,3]); the remainder must instead spread so exactly
        // k groups differ in size by at most one.
        let map = GroupMap::contiguous(9, 4);
        assert_eq!(map.group_count(), 4);
        assert_eq!(map.group_sizes(), vec![3, 2, 2, 2]);

        for (n, k) in [(10, 3), (11, 4), (7, 2), (100, 7), (5, 5), (13, 6)] {
            let map = GroupMap::contiguous(n, k);
            let sizes = map.group_sizes();
            assert_eq!(map.group_count(), k, "n={n} k={k}");
            assert_eq!(sizes.iter().sum::<usize>(), n, "n={n} k={k}");
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1, "n={n} k={k}: unbalanced {sizes:?}");
            // Groups are contiguous and ascending.
            for i in 1..n {
                let prev = map.group(NodeId::from_index(i - 1));
                let cur = map.group(NodeId::from_index(i));
                assert!(cur == prev || cur == prev + 1, "n={n} k={k} at {i}");
            }
        }
    }

    #[test]
    fn contiguous_with_more_groups_than_nodes_is_safe() {
        let map = GroupMap::contiguous(3, 5);
        assert_eq!(map.group_sizes(), vec![1, 1, 1]);
        assert_eq!(map.group_count(), 3);
    }

    #[test]
    fn connectivity_measures_partition_health() {
        assert_eq!(GroupMap::contiguous(10, 1).connectivity(), 1.0);
        assert!((GroupMap::contiguous(10, 2).connectivity() - 0.5).abs() < 1e-12);
        let quarters = GroupMap::contiguous(8, 4).connectivity();
        assert!((quarters - 0.25).abs() < 1e-12);
        // Empty maps are trivially healthy.
        assert_eq!(GroupMap::new(Vec::new()).connectivity(), 1.0);
    }

    #[test]
    fn unassigned_nodes_default_to_group_zero() {
        let map = GroupMap::new(vec![1, 1]);
        assert_eq!(map.group(NodeId(7)), 0);
    }

    #[test]
    fn full_partition_blocks_cross_traffic_only() {
        let map = GroupMap::contiguous(4, 2);
        let model = PartitionedLoss::full_partition(map);
        let mut rng = SimRng::seed_from_u64(0);
        assert!(
            model.is_lost(NodeId(0), NodeId(2), &mut rng),
            "cross-group always lost"
        );
        assert!(
            !model.is_lost(NodeId(0), NodeId(1), &mut rng),
            "intra-group never lost"
        );
    }

    #[test]
    fn partial_border_loss_matches_probability() {
        let map = GroupMap::contiguous(4, 2);
        let model = PartitionedLoss::new(map, 0.3, 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        let lost = (0..10_000)
            .filter(|_| model.is_lost(NodeId(0), NodeId(3), &mut rng))
            .count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "border loss {rate}");
    }

    #[test]
    fn regional_latency_differs() {
        let map = GroupMap::contiguous(4, 2);
        let model = RegionalLatency::new(
            map,
            SimDuration::from_millis(5),
            SimDuration::from_millis(80),
        );
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(
            model.delay(NodeId(0), NodeId(1), &mut rng),
            SimDuration::from_millis(5)
        );
        assert_eq!(
            model.delay(NodeId(1), NodeId(2), &mut rng),
            SimDuration::from_millis(80)
        );
    }

    #[test]
    fn partitioned_network_end_to_end() {
        let map = GroupMap::contiguous(4, 2);
        let config = NetworkConfig {
            latency: Box::new(RegionalLatency::new(
                map.clone(),
                SimDuration::from_millis(1),
                SimDuration::from_millis(1),
            )),
            loss: Box::new(PartitionedLoss::full_partition(map)),
        };
        let mut net = Network::new(config, SimRng::seed_from_u64(3));
        for _ in 0..4 {
            net.add_node();
        }
        net.send(NodeId(0), NodeId(1), "local".into());
        net.send(NodeId(0), NodeId(3), "remote".into());
        net.advance_to(SimTime::from_secs(1));
        assert_eq!(net.inbox_len(NodeId(1)), 1);
        assert_eq!(net.inbox_len(NodeId(3)), 0);
        assert_eq!(net.stats().dropped.value(), 1);
    }

    #[test]
    #[should_panic(expected = "cross_loss")]
    fn invalid_probability_panics() {
        let _ = PartitionedLoss::new(GroupMap::contiguous(2, 1), 1.5, 0.0);
    }
}
