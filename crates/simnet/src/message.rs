//! Messages exchanged between simulated nodes.

use crate::time::SimTime;
use crate::NodeId;

/// Identifier of a message, unique within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u64);

/// Application payload carried by an [`Envelope`].
///
/// The simulator is payload-agnostic: higher layers define their own
/// protocol vocabulary. `Payload` covers the needs of the tsn workspace
/// (small tagged records) without forcing every protocol message through
/// serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Free-form text (used by examples and tests).
    Text(String),
    /// A tagged record: protocol discriminant plus small numeric fields.
    /// This is the workhorse for reputation / privacy protocol messages.
    Record {
        /// Protocol message kind, e.g. `"feedback.report"`.
        tag: String,
        /// Numeric fields keyed positionally by the protocol.
        fields: Vec<f64>,
    },
    /// Opaque bytes (e.g. simulated ciphertext / blinded certificates).
    Bytes(Vec<u8>),
}

impl Payload {
    /// Approximate wire size in bytes, used by the network for
    /// bandwidth accounting and by the privacy ledger for exposure weight.
    pub fn wire_size(&self) -> usize {
        match self {
            Payload::Text(s) => s.len(),
            Payload::Record { tag, fields } => tag.len() + fields.len() * 8,
            Payload::Bytes(b) => b.len(),
        }
    }

    /// Convenience constructor for a tagged record.
    pub fn record(tag: impl Into<String>, fields: Vec<f64>) -> Self {
        Payload::Record {
            tag: tag.into(),
            fields,
        }
    }
}

impl From<&str> for Payload {
    fn from(value: &str) -> Self {
        Payload::Text(value.to_owned())
    }
}

impl From<String> for Payload {
    fn from(value: String) -> Self {
        Payload::Text(value)
    }
}

/// A message in flight: payload plus routing and timing metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Unique id of this message.
    pub id: MessageId,
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Time the message was handed to the network.
    pub sent_at: SimTime,
    /// The payload.
    pub payload: Payload,
}

impl Envelope {
    /// Approximate wire size (payload plus a fixed 48-byte header,
    /// mirroring a UDP-ish header + ids).
    pub fn wire_size(&self) -> usize {
        48 + self.payload.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_wire_sizes() {
        assert_eq!(Payload::from("abcd").wire_size(), 4);
        assert_eq!(Payload::record("t", vec![1.0, 2.0]).wire_size(), 1 + 16);
        assert_eq!(Payload::Bytes(vec![0; 10]).wire_size(), 10);
    }

    #[test]
    fn envelope_wire_size_includes_header() {
        let env = Envelope {
            id: MessageId(1),
            from: NodeId(0),
            to: NodeId(1),
            sent_at: SimTime::ZERO,
            payload: Payload::from("xy"),
        };
        assert_eq!(env.wire_size(), 50);
    }

    #[test]
    fn payload_from_string_types() {
        assert_eq!(Payload::from("a"), Payload::Text("a".into()));
        assert_eq!(Payload::from(String::from("b")), Payload::Text("b".into()));
    }
}
