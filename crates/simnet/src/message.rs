//! Messages exchanged between simulated nodes.

use crate::time::SimTime;
use crate::NodeId;

/// Identifier of a message, unique within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u64);

/// An interned protocol tag — the discriminant of a [`Payload::Record`].
///
/// A `Tag` is a `Copy` handle to a `'static` string. Protocols name
/// their message kinds as `const` tags (`Tag::new("pushsum")`), so the
/// hot path never allocates, clones or hashes a `String`: comparison is
/// a pointer check with a content fallback, and the wire size is the
/// tag's byte length (identical to the pre-interning accounting).
///
/// Dynamically built tag names go through [`Tag::intern`], which leaks
/// one copy per distinct name into a process-wide registry — bounded by
/// the protocol vocabulary, not by traffic.
#[derive(Debug, Clone, Copy)]
pub struct Tag(&'static str);

impl Tag {
    /// Wraps a static tag name; `const`, so protocols write
    /// `const PUSHSUM: Tag = Tag::new("pushsum");`.
    pub const fn new(name: &'static str) -> Self {
        Tag(name)
    }

    /// Interns a dynamically built tag name: one leak per distinct
    /// name, the same handle ever after.
    pub fn intern(name: &str) -> Self {
        use std::sync::{Mutex, OnceLock};
        static REGISTRY: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
        let registry = REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
        // tsn-lint: allow(no-unwrap, "registry poisoning implies a prior panic while interning; propagating the panic is the design")
        let mut registry = registry.lock().expect("tag registry poisoned");
        if let Some(existing) = registry.iter().find(|s| **s == name) {
            return Tag(existing);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        registry.push(leaked);
        Tag(leaked)
    }

    /// The tag name.
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// Byte length on the wire (the name's length, as before interning).
    pub fn wire_len(self) -> usize {
        self.0.len()
    }
}

impl PartialEq for Tag {
    fn eq(&self, other: &Self) -> bool {
        // Interned/const tags usually share the allocation: pointer
        // equality is the fast path, content equality keeps mixed
        // provenance (e.g. `intern` vs `new`) correct.
        std::ptr::eq(self.0, other.0) || self.0 == other.0
    }
}

impl Eq for Tag {}

impl From<&'static str> for Tag {
    fn from(value: &'static str) -> Self {
        Tag::new(value)
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// Application payload carried by an [`Envelope`].
///
/// The simulator is payload-agnostic: higher layers define their own
/// protocol vocabulary. `Payload` covers the needs of the tsn workspace
/// (small tagged records) without forcing every protocol message through
/// serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Free-form text (used by examples and tests).
    Text(String),
    /// A tagged record: protocol discriminant plus small numeric fields.
    /// This is the workhorse for reputation / privacy protocol messages.
    /// The field buffer is typically drawn from the network's
    /// [`BufferPool`](crate::BufferPool) and recycled on consumption.
    Record {
        /// Protocol message kind, e.g. `"feedback.report"`, interned.
        tag: Tag,
        /// Numeric fields keyed positionally by the protocol.
        fields: Vec<f64>,
    },
    /// Opaque bytes (e.g. simulated ciphertext / blinded certificates).
    Bytes(Vec<u8>),
}

impl Payload {
    /// Approximate wire size in bytes, used by the network for
    /// bandwidth accounting and by the privacy ledger for exposure weight.
    pub fn wire_size(&self) -> usize {
        match self {
            Payload::Text(s) => s.len(),
            Payload::Record { tag, fields } => tag.wire_len() + fields.len() * 8,
            Payload::Bytes(b) => b.len(),
        }
    }

    /// Convenience constructor for a tagged record.
    pub fn record(tag: impl Into<Tag>, fields: Vec<f64>) -> Self {
        Payload::Record {
            tag: tag.into(),
            fields,
        }
    }
}

impl From<&str> for Payload {
    fn from(value: &str) -> Self {
        Payload::Text(value.to_owned())
    }
}

impl From<String> for Payload {
    fn from(value: String) -> Self {
        Payload::Text(value)
    }
}

/// A message in flight: payload plus routing and timing metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Unique id of this message.
    pub id: MessageId,
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Time the message was handed to the network.
    pub sent_at: SimTime,
    /// The payload.
    pub payload: Payload,
}

impl Envelope {
    /// Approximate wire size (payload plus a fixed 48-byte header,
    /// mirroring a UDP-ish header + ids).
    pub fn wire_size(&self) -> usize {
        48 + self.payload.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_wire_sizes() {
        assert_eq!(Payload::from("abcd").wire_size(), 4);
        assert_eq!(Payload::record("t", vec![1.0, 2.0]).wire_size(), 1 + 16);
        assert_eq!(Payload::Bytes(vec![0; 10]).wire_size(), 10);
    }

    #[test]
    fn envelope_wire_size_includes_header() {
        let env = Envelope {
            id: MessageId(1),
            from: NodeId(0),
            to: NodeId(1),
            sent_at: SimTime::ZERO,
            payload: Payload::from("xy"),
        };
        assert_eq!(env.wire_size(), 50);
    }

    #[test]
    fn payload_from_string_types() {
        assert_eq!(Payload::from("a"), Payload::Text("a".into()));
        assert_eq!(Payload::from(String::from("b")), Payload::Text("b".into()));
    }

    #[test]
    fn tags_compare_by_content_across_provenance() {
        const PUSHSUM: Tag = Tag::new("pushsum");
        assert_eq!(PUSHSUM, Tag::new("pushsum"));
        assert_eq!(PUSHSUM, Tag::intern(&String::from("pushsum")));
        assert_ne!(PUSHSUM, Tag::new("other"));
        assert_eq!(PUSHSUM.as_str(), "pushsum");
        assert_eq!(PUSHSUM.wire_len(), 7);
    }

    #[test]
    fn interning_is_idempotent() {
        let a = Tag::intern("dyn.tag");
        let b = Tag::intern(&format!("dyn.{}", "tag"));
        assert_eq!(a, b);
        assert!(
            std::ptr::eq(a.as_str(), b.as_str()),
            "same registry entry is handed back"
        );
    }
}
