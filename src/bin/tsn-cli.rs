//! `tsn-cli` — run scenarios, sweeps and the analytic dynamics from the
//! command line (plain `std::env` parsing; no extra dependencies).
//!
//! ```text
//! tsn-cli scenario [--nodes N] [--rounds R] [--seed S] [--mechanism M]
//!                  [--disclosure 0..4] [--malicious F] [--policies P]
//!                  [--churn F] [--adaptive] [--json]
//! tsn-cli sweep    [--nodes N] [--rounds R] [--seed S] [--json]
//! tsn-cli dynamics [--honest F] [--eta F]
//! ```

use std::process::ExitCode;
use tsn::core::dynamics::{DynamicsConfig, DynamicsState, InteractionDynamics};
use tsn::core::scenario::run_scenario;
use tsn::core::{FacetScores, Optimizer, PolicyProfile, ScenarioConfig, TrustMetric};
use tsn::reputation::{MechanismKind, PopulationConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: tsn-cli <scenario|sweep|dynamics> [flags]  (see --help)");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "scenario" => cmd_scenario(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "dynamics" => cmd_dynamics(&args[1..]),
        "--help" | "help" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "tsn-cli — Trust your Social Network, from the command line

commands:
  scenario   run one end-to-end scenario and print the facets and trust
  sweep      grid-sweep mechanisms x disclosure x policies; report Area A
  dynamics   iterate the Section-3 analytic dynamics to its fixed point

common flags:
  --nodes N --rounds R --seed S --json
scenario flags:
  --mechanism none|beta|eigentrust|powertrust|trustme
  --disclosure 0..4   --malicious 0.0..1.0
  --policies permissive|mixed|strict   --churn 0.0..1.0   --adaptive
dynamics flags:
  --honest 0.0..1.0   --eta 0.0..1.0"
    );
}

/// Minimal flag parser: `--key value` pairs plus boolean `--flag`s.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("invalid value '{raw}' for {key}")),
        }
    }
}

fn parse_mechanism(raw: &str) -> Result<MechanismKind, String> {
    MechanismKind::ALL
        .into_iter()
        .find(|m| m.name() == raw)
        .ok_or_else(|| format!("unknown mechanism '{raw}'"))
}

fn parse_policies(raw: &str) -> Result<PolicyProfile, String> {
    PolicyProfile::ALL
        .into_iter()
        .find(|p| p.label() == raw)
        .ok_or_else(|| format!("unknown policy profile '{raw}'"))
}

fn scenario_config(flags: &Flags) -> Result<ScenarioConfig, String> {
    let mut config = ScenarioConfig::default();
    config.nodes = flags.parse("--nodes", config.nodes)?;
    config.rounds = flags.parse("--rounds", config.rounds)?;
    config.seed = flags.parse("--seed", config.seed)?;
    config.disclosure_level = flags.parse("--disclosure", config.disclosure_level)?;
    config.churn_offline = flags.parse("--churn", config.churn_offline)?;
    config.adaptive_disclosure = flags.has("--adaptive");
    if let Some(raw) = flags.get("--mechanism") {
        config.mechanism = parse_mechanism(raw)?;
    }
    if let Some(raw) = flags.get("--policies") {
        config.policy_profile = parse_policies(raw)?;
    }
    let malicious = flags.parse("--malicious", 0.2)?;
    config.population = PopulationConfig::with_malicious(malicious);
    config.validate()?;
    Ok(config)
}

fn cmd_scenario(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let config = scenario_config(&flags)?;
    let outcome = run_scenario(config.clone())?;
    if flags.has("--json") {
        let line = serde_json::json!({
            "config": {
                "nodes": config.nodes,
                "rounds": config.rounds,
                "seed": config.seed,
                "mechanism": config.mechanism.name(),
                "disclosure_level": config.disclosure_level,
                "policies": config.policy_profile.label(),
            },
            "facets": outcome.facets,
            "global_trust": outcome.global_trust,
            "respect_rate": outcome.respect_rate,
            "user_breaches": outcome.user_breaches,
            "system_breaches": outcome.system_breaches,
            "denial_rate": outcome.denial_rate,
            "interactions": outcome.interactions,
            "messages": outcome.messages,
        });
        println!("{line}");
    } else {
        println!(
            "scenario: {} users, {} rounds, mechanism={}, disclosure={}, policies={}",
            config.nodes,
            config.rounds,
            config.mechanism.name(),
            config.disclosure_level,
            config.policy_profile.label()
        );
        println!("  facets: {}", outcome.facets);
        println!("  global trust      = {:.3}", outcome.global_trust);
        println!("  respect rate      = {:.3}", outcome.respect_rate);
        println!(
            "  breaches          = {} user-caused, {} system-caused",
            outcome.user_breaches, outcome.system_breaches
        );
        println!("  denial rate       = {:.3}", outcome.denial_rate);
        println!("  interactions      = {}", outcome.interactions);
        println!("  messages          = {}", outcome.messages);
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let mut base = ScenarioConfig::default();
    base.nodes = flags.parse("--nodes", 48usize)?;
    base.rounds = flags.parse("--rounds", 10usize)?;
    base.seed = flags.parse("--seed", base.seed)?;
    base.graph_degree = base.graph_degree.min(base.nodes.saturating_sub(2)) & !1;
    let mut optimizer = Optimizer::new(base, TrustMetric::default())?;
    optimizer.seeds_per_point = 1;
    let sweep = optimizer.sweep();
    let thresholds = FacetScores::new(0.5, 0.55, 0.35)?;
    let report = optimizer.area_report(&sweep, thresholds);
    let best = optimizer.best(&sweep, Some(thresholds));
    if flags.has("--json") {
        println!(
            "{}",
            serde_json::json!({ "area": report, "best": best.best, "in_area_a": best.in_area_a })
        );
    } else {
        println!(
            "sweep of {} configs: Area A holds {} ({}%)",
            report.total,
            report.area_a,
            (100 * report.area_a) / report.total.max(1)
        );
        println!(
            "best: mechanism={} disclosure={} policies={} trust={:.3}{}",
            best.best.mechanism.name(),
            best.best.disclosure_level,
            best.best.policy_profile.label(),
            best.best.trust,
            if best.in_area_a { " (inside Area A)" } else { "" }
        );
    }
    Ok(())
}

fn cmd_dynamics(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let mut config = DynamicsConfig::default();
    config.honest_fraction = flags.parse("--honest", config.honest_fraction)?;
    config.eta = flags.parse("--eta", config.eta)?;
    config.validate()?;
    let dynamics = InteractionDynamics::new(config);
    let (state, steps) = dynamics.fixed_point(DynamicsState::neutral(), 1e-10, 100_000);
    println!("fixed point after {steps} steps (honest_fraction={}):", config.honest_fraction);
    println!("  trust                 = {:.4}", state.trust);
    println!("  satisfaction          = {:.4}", state.satisfaction);
    println!("  reputation efficiency = {:.4}", state.reputation_efficiency);
    println!("  disclosure            = {:.4}", state.disclosure);
    println!("  privacy               = {:.4}", state.privacy);
    Ok(())
}
