//! `tsn-cli` — run scenarios, sweeps and the analytic dynamics from the
//! command line (plain `std::env` parsing; no extra dependencies).
//!
//! ```text
//! tsn-cli scenario [--nodes N] [--rounds R] [--seed S] [--mechanism M]
//!                  [--disclosure 0..4] [--malicious F] [--policies P]
//!                  [--churn F] [--adaptive] [--progress K] [--json]
//! tsn-cli sweep    [--nodes N] [--rounds R] [--seed S] [--seeds K]
//!                  [--threads T] [--json] [--csv]
//! tsn-cli dynamics [--honest F] [--eta F]
//! tsn-cli serve    [--nodes N] [--epochs E] [--epoch-secs S] [--seed S]
//!                  [--mechanism M] [--disclosure 0..4] [--malicious F]
//!                  [--arrivals F] [--queries F] [--checkpoint FILE]
//!                  [--journal] [--crash-at SECS] [--down-secs SECS]
//!                  [--grace SECS] [--replicas N] [--kill-primary-at SECS]
//!                  [--journal-dir DIR] [--json]
//! tsn-cli replay   --checkpoint FILE [--fallback FILE] [--epochs E]
//!                  [--verify] [--json]
//! tsn-cli replay   --from-checkpoint --journal-dir DIR [--epochs E]
//!                  [--verify] [--json]
//! ```

use std::process::ExitCode;
use tsn::core::dynamics::{DynamicsConfig, DynamicsState, InteractionDynamics};
use tsn::core::json::JsonValue;
use tsn::core::runner::{
    DisclosureLevel, ProgressPrinter, ScenarioBuilder, SweepGrid, SweepRunner,
};
use tsn::core::{FacetScores, PolicyProfile};
use tsn::reputation::MechanismKind;
use tsn::service::{
    checkpoint_sections, DriverConfig, EventJournal, HostConfig, ReplicaConfig, ReplicaSet,
    RetryPolicy, ServiceConfig, ServiceDriver, ServiceHost, TrustService,
};
use tsn::simnet::{FaultInjector, FaultPlan, MembershipConfig, SimDuration, SimTime};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: tsn-cli <scenario|sweep|dynamics> [flags]  (see --help)");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "scenario" => cmd_scenario(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "dynamics" => cmd_dynamics(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "--help" | "help" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "tsn-cli — Trust your Social Network, from the command line

commands:
  scenario   run one end-to-end scenario and print the facets and trust
  sweep      grid-sweep mechanisms x disclosure x policies in parallel;
             report every cell, the trust winner and Area A
  dynamics   iterate the Section-3 analytic dynamics to its fixed point
  serve      run the online TrustService under a generated workload
  replay     restore a service checkpoint and (optionally) continue it

common flags:
  --nodes N --rounds R --seed S --json
scenario flags:
  --mechanism none|beta|eigentrust|powertrust|trustme
  --disclosure 0..4   --malicious 0.0..1.0
  --policies permissive|mixed|strict   --churn 0.0..1.0   --adaptive
  --progress K   print a progress line every K rounds
peer-sampling flags (scenario + serve):
  --peer-sampling   draw partners from bounded partial views kept fresh
                    by view shuffling instead of the global population
  --view-size N     entries per partial view (default 16)
  --relays N        bootstrap relay nodes (default 3); implies the overlay
sweep flags:
  --seeds K    Monte-Carlo seeds per grid point (default 1)
  --threads T  worker threads (default: all cores)
  --csv        emit the full report as CSV
dynamics flags:
  --honest 0.0..1.0   --eta 0.0..1.0
serve flags:
  --epochs E        epochs to drive (default 10)
  --epoch-secs S    epoch length / staleness bound (default 60)
  --arrivals F      interactions per node per epoch (default 2.0)
  --queries F       query probability per interaction (default 0.5)
  --checkpoint F    write a binary checkpoint to file F at the end
  --journal         host the service behind a write-ahead journal +
                    auto-checkpoints (crash-tolerant mode)
  --crash-at S      crash the hosted service at sim-second S (implies
                    --journal); clients retry with backoff
  --down-secs S     downtime before the scheduled restart (default 5)
  --grace S         degraded-query window after recovery (default 2)
  --replicas N      run N replicated hosts behind the deterministic
                    sequencer (implies --journal; failover on crash)
  --kill-primary-at S  crash replica 0 (the initial primary) at
                    sim-second S; the healthiest follower is promoted
  --journal-dir D   persist the (primary's) segmented journal +
                    checkpoint ring to directory D at the end
replay flags:
  --checkpoint F    checkpoint file to restore (required)
  --fallback F      previous checkpoint to fall back to when the newest
                    one fails its section CRCs
  --from-checkpoint restore through the real recovery path instead:
                    newest valid checkpoint from --journal-dir +
                    segment-suffix journal replay
  --journal-dir D   storage directory written by serve --journal-dir
  --epochs E        extra epochs to continue after restoring (default 0)
  --verify          rerun from scratch and check the restored-and-
                    continued run is bit-identical (works for fallback
                    and --from-checkpoint restores too)"
    );
}

/// Minimal flag parser: `--key value` pairs plus boolean `--flag`s.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value '{raw}' for {key}")),
        }
    }
}

fn parse_mechanism(raw: &str) -> Result<MechanismKind, String> {
    MechanismKind::ALL
        .into_iter()
        .find(|m| m.name() == raw)
        .ok_or_else(|| format!("unknown mechanism '{raw}'"))
}

fn parse_policies(raw: &str) -> Result<PolicyProfile, String> {
    PolicyProfile::ALL
        .into_iter()
        .find(|p| p.label() == raw)
        .ok_or_else(|| format!("unknown policy profile '{raw}'"))
}

fn parse_disclosure(raw: &str) -> Result<DisclosureLevel, String> {
    raw.parse::<usize>()
        .ok()
        .and_then(DisclosureLevel::from_index)
        .ok_or_else(|| format!("--disclosure must be 0..4, got '{raw}'"))
}

fn scenario_builder(flags: &Flags) -> Result<ScenarioBuilder, String> {
    let mut builder = ScenarioBuilder::new()
        .nodes(flags.parse("--nodes", 100)?)
        .rounds(flags.parse("--rounds", 30)?)
        .seed(flags.parse("--seed", 42)?)
        .churn(flags.parse("--churn", 0.0)?)
        .malicious_fraction(flags.parse("--malicious", 0.2)?)
        .adaptive_disclosure(flags.has("--adaptive"));
    if let Some(raw) = flags.get("--disclosure") {
        builder = builder.disclosure(parse_disclosure(raw)?);
    }
    if let Some(raw) = flags.get("--mechanism") {
        builder = builder.mechanism(parse_mechanism(raw)?);
    }
    if let Some(raw) = flags.get("--policies") {
        builder = builder.policy_profile(parse_policies(raw)?);
    }
    if let Some(overlay) = membership_flags(flags)? {
        builder = builder.membership(overlay);
    }
    Ok(builder)
}

/// Parse the peer-sampling overlay flags shared by `scenario` and `serve`.
///
/// `--peer-sampling` switches partner selection from the global population
/// to bounded partial views refreshed by view shuffling; `--view-size` and
/// `--relays` tune the overlay (and imply `--peer-sampling`).
fn membership_flags(flags: &Flags) -> Result<Option<MembershipConfig>, String> {
    let requested = flags.has("--peer-sampling")
        || flags.get("--view-size").is_some()
        || flags.get("--relays").is_some();
    if !requested {
        return Ok(None);
    }
    let defaults = MembershipConfig::default();
    let view_size = flags.parse("--view-size", defaults.view_size)?;
    let mut overlay = MembershipConfig {
        view_size,
        shuffle_len: (view_size / 2).max(1),
        relays: flags.parse("--relays", defaults.relays)?,
        relay_fanout: defaults.relay_fanout.min(view_size),
        ..defaults
    };
    overlay.swap = overlay.shuffle_len.saturating_sub(overlay.healing);
    overlay.validate()?;
    Ok(Some(overlay))
}

fn cmd_scenario(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let builder = scenario_builder(&flags)?;
    let config = builder.clone().build().map_err(|e| e.to_string())?;
    let outcome = if let Some(every) = flags.get("--progress") {
        let every: usize = every.parse().map_err(|_| "invalid value for --progress")?;
        let mut progress = ProgressPrinter::every(every);
        builder.run_observed(&mut [&mut progress])
    } else {
        builder.run()
    }
    .map_err(|e| e.to_string())?;
    if flags.has("--json") {
        let line = JsonValue::object([
            (
                "config",
                JsonValue::object([
                    ("nodes", JsonValue::from(config.nodes)),
                    ("rounds", JsonValue::from(config.rounds)),
                    ("seed", JsonValue::from(config.seed)),
                    ("mechanism", JsonValue::str(config.mechanism.name())),
                    ("disclosure_level", JsonValue::from(config.disclosure_level)),
                    ("policies", JsonValue::str(config.policy_profile.label())),
                ]),
            ),
            (
                "facets",
                JsonValue::object([
                    ("privacy", JsonValue::from(outcome.facets.privacy)),
                    ("reputation", JsonValue::from(outcome.facets.reputation)),
                    ("satisfaction", JsonValue::from(outcome.facets.satisfaction)),
                ]),
            ),
            ("global_trust", JsonValue::from(outcome.global_trust)),
            ("respect_rate", JsonValue::from(outcome.respect_rate)),
            ("user_breaches", JsonValue::from(outcome.user_breaches)),
            ("system_breaches", JsonValue::from(outcome.system_breaches)),
            ("denial_rate", JsonValue::from(outcome.denial_rate)),
            ("interactions", JsonValue::from(outcome.interactions)),
            ("messages", JsonValue::from(outcome.messages)),
        ]);
        println!("{line}");
    } else {
        println!(
            "scenario: {} users, {} rounds, mechanism={}, disclosure={}, policies={}",
            config.nodes,
            config.rounds,
            config.mechanism.name(),
            config.disclosure_level,
            config.policy_profile.label()
        );
        println!("  facets: {}", outcome.facets);
        println!("  global trust      = {:.3}", outcome.global_trust);
        println!("  respect rate      = {:.3}", outcome.respect_rate);
        println!(
            "  breaches          = {} user-caused, {} system-caused",
            outcome.user_breaches, outcome.system_breaches
        );
        println!("  denial rate       = {:.3}", outcome.denial_rate);
        println!("  interactions      = {}", outcome.interactions);
        println!("  messages          = {}", outcome.messages);
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let nodes: usize = flags.parse("--nodes", 48)?;
    let seed: u64 = flags.parse("--seed", 42)?;
    let seeds_per_point: u64 = flags.parse("--seeds", 1)?;
    if seeds_per_point == 0 {
        return Err("--seeds must be at least 1".into());
    }
    let degree = 8usize.min(nodes.saturating_sub(2)) & !1;
    let base = ScenarioBuilder::new()
        .nodes(nodes)
        .rounds(flags.parse("--rounds", 10)?)
        .graph(degree, 0.1)
        .seed(seed);
    let grid = SweepGrid::over(base)
        .all_mechanisms()
        .all_disclosures()
        .all_profiles()
        .seeds((0..seeds_per_point).map(|i| seed.wrapping_add(i * 7919)));

    let runner = match flags.get("--threads") {
        Some(raw) => {
            let t: usize = raw.parse().map_err(|_| "invalid value for --threads")?;
            SweepRunner::with_threads(t)
        }
        None => SweepRunner::parallel(),
    };
    eprintln!(
        "sweeping {} cells on {} threads...",
        grid.len(),
        runner.threads().min(grid.len())
    );
    let report = runner.run(&grid).map_err(|e| e.to_string())?;

    if flags.has("--csv") {
        print!("{}", report.to_csv());
        return Ok(());
    }
    if flags.has("--json") {
        println!("{}", report.to_json());
        return Ok(());
    }

    let thresholds = FacetScores::new(0.5, 0.55, 0.35)?;
    let in_area = report.meeting(&thresholds).count();
    println!(
        "{}",
        report
            .to_table("SWEEP", "mechanism x disclosure x policies")
            .render()
    );
    println!(
        "sweep of {} cells: Area A (facets >= {:.2}/{:.2}/{:.2}) holds {} ({}%)",
        report.cells.len(),
        thresholds.privacy,
        thresholds.reputation,
        thresholds.satisfaction,
        in_area,
        (100 * in_area) / report.cells.len().max(1)
    );
    let best = report.best_by_trust().expect("non-empty grid");
    println!(
        "best: mechanism={} disclosure={} policies={} trust={:.3}{}",
        best.cell.mechanism.name(),
        best.cell.disclosure.index(),
        best.cell.profile.label(),
        best.trust,
        if best.facets.meets(&thresholds) {
            " (inside Area A)"
        } else {
            ""
        }
    );
    Ok(())
}

/// Shared by `serve` and `replay`: the driver workload flags.
fn driver_config(flags: &Flags, nodes: usize) -> Result<DriverConfig, String> {
    let defaults = DriverConfig::default();
    let config = DriverConfig {
        nodes,
        arrival_rate: flags.parse("--arrivals", defaults.arrival_rate)?,
        disclosure_rate: flags.parse("--disclosures", defaults.disclosure_rate)?,
        query_rate: flags.parse("--queries", defaults.query_rate)?,
        malicious_fraction: flags.parse("--malicious", defaults.malicious_fraction)?,
        seed: flags.parse("--seed", defaults.seed)?,
        membership: membership_flags(flags)?,
    };
    config.validate()?;
    Ok(config)
}

fn service_summary(service: &TrustService, json: bool) {
    let stats = service.stats();
    let scores = service.scores();
    let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
    if json {
        let line = JsonValue::object([
            ("nodes", JsonValue::from(service.config().nodes)),
            ("epochs_committed", JsonValue::from(stats.commits)),
            ("ingested", JsonValue::from(stats.ingested)),
            ("rejected", JsonValue::from(stats.rejected)),
            ("queries", JsonValue::from(stats.queries)),
            (
                "refresh_iterations",
                JsonValue::from(stats.refresh_iterations),
            ),
            ("now_us", JsonValue::from(service.now().as_micros())),
            ("as_of_us", JsonValue::from(service.as_of().as_micros())),
            ("mean_score", JsonValue::from(mean)),
        ]);
        println!("{line}");
    } else {
        println!(
            "service: {} nodes, {} epochs committed, clock at {:.0}s (visible to {:.0}s)",
            service.config().nodes,
            stats.commits,
            service.now().as_micros() as f64 / 1e6,
            service.as_of().as_micros() as f64 / 1e6,
        );
        println!(
            "  events: {} ingested, {} rejected by partitions",
            stats.ingested, stats.rejected
        );
        println!("  queries answered  = {}", stats.queries);
        println!("  refresh iterations= {}", stats.refresh_iterations);
        println!("  mean trust score  = {mean:.4}");
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let nodes: usize = flags.parse("--nodes", 100)?;
    let epochs: u64 = flags.parse("--epochs", 10)?;
    let epoch_secs: u64 = flags.parse("--epoch-secs", 60)?;
    let mut config = ServiceConfig {
        nodes,
        epoch: SimDuration::from_secs(epoch_secs),
        ..ServiceConfig::default()
    };
    if let Some(raw) = flags.get("--mechanism") {
        config.mechanism = parse_mechanism(raw)?;
    }
    if let Some(raw) = flags.get("--disclosure") {
        config.disclosure_level = parse_disclosure(raw)?.index();
    }
    // The overlay rides in the service config too, so checkpoints
    // written by this run carry it (checkpoint config section v3).
    config.membership = membership_flags(&flags)?;
    let driver = ServiceDriver::new(driver_config(&flags, nodes)?)?;
    let replicas: usize = flags.parse("--replicas", 1usize)?;
    if replicas > 1 || flags.get("--kill-primary-at").is_some() {
        return serve_replicated(&flags, config, &driver, epochs, replicas.max(2));
    }
    let hosted = flags.has("--journal")
        || flags.get("--crash-at").is_some()
        || flags.get("--journal-dir").is_some();
    if hosted {
        return serve_hosted(&flags, config, &driver, epochs);
    }
    let mut service = TrustService::new(config)?;
    driver.drive(&mut service, epochs)?;
    service_summary(&service, flags.has("--json"));
    write_checkpoint_flag(&flags, &service)?;
    Ok(())
}

/// `serve --journal [--crash-at S]`: the crash-tolerant path — a
/// [`ServiceHost`] (write-ahead journal + auto-checkpoints) driven with
/// client-side retries, optionally crashed on schedule.
fn serve_hosted(
    flags: &Flags,
    config: ServiceConfig,
    driver: &ServiceDriver,
    epochs: u64,
) -> Result<(), String> {
    let host_config = HostConfig {
        service: config,
        recovery_grace: SimDuration::from_secs(flags.parse("--grace", 2u64)?),
        ..HostConfig::default()
    };
    let mut host = ServiceHost::new(host_config)?;
    if let Some(raw) = flags.get("--crash-at") {
        let crash_at: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value '{raw}' for --crash-at"))?;
        let down: u64 = flags.parse("--down-secs", 5u64)?;
        let plan =
            FaultPlan::service_crash(SimTime::from_secs(crash_at), SimDuration::from_secs(down));
        host.attach_faults(FaultInjector::new(plan, driver.config().seed)?);
        eprintln!("fault plan: crash at {crash_at}s, restart after {down}s");
    }
    let report = driver.drive_host(&mut host, epochs, &RetryPolicy::default())?;
    let stats = host.stats();
    eprintln!(
        "host: {} crashes, {} recoveries, {} checkpoints written, {} journal records \
         ({} live bytes in {} segments, {} segments GC'd)",
        stats.crashes,
        stats.recoveries,
        stats.checkpoints_written,
        host.journal().records(),
        host.journal().byte_len(),
        host.journal().segments().len(),
        stats.journal_segments_gced,
    );
    eprintln!(
        "client: {} ops applied, {} retried, {} degraded answers, {} abandoned",
        report.applied, report.retries, report.degraded_answers, report.abandoned
    );
    if let Some(recovery) = host.last_recovery() {
        eprintln!(
            "last recovery: {} journal records replayed on {} \
             ({} segments opened, {} skipped, fallbacks: {}, torn tail: {})",
            recovery.replayed,
            if recovery.from_scratch {
                "a fresh service"
            } else {
                "a restored checkpoint"
            },
            recovery.segments_opened,
            recovery.segments_skipped,
            recovery.fallbacks,
            recovery.torn_tail,
        );
    }
    persist_storage_flag(flags, &host)?;
    let service = host
        .service()
        .ok_or("the hosted service ended the run down")?;
    service_summary(service, flags.has("--json"));
    write_checkpoint_flag(flags, service)?;
    Ok(())
}

/// `serve --replicas N [--kill-primary-at S]`: N replicated hosts
/// behind the deterministic sequencer, with scripted primary kills and
/// automatic failover.
fn serve_replicated(
    flags: &Flags,
    config: ServiceConfig,
    driver: &ServiceDriver,
    epochs: u64,
    replicas: usize,
) -> Result<(), String> {
    if flags.get("--grace").is_some() {
        eprintln!("note: --grace is ignored with --replicas (members recover with zero grace)");
    }
    let host = HostConfig {
        service: config,
        recovery_grace: SimDuration::ZERO,
        ..HostConfig::default()
    };
    let mut set = ReplicaSet::new(ReplicaConfig { host, replicas })?;
    if let Some(raw) = flags.get("--kill-primary-at") {
        let kill_at: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value '{raw}' for --kill-primary-at"))?;
        let down: u64 = flags.parse("--down-secs", 5u64)?;
        let plan =
            FaultPlan::replica_crash(0, SimTime::from_secs(kill_at), SimDuration::from_secs(down));
        set.attach_faults(FaultInjector::new(plan, driver.config().seed)?);
        eprintln!("fault plan: kill primary (replica 0) at {kill_at}s, restart after {down}s");
    }
    let report = driver.drive_replicas(&mut set, epochs, &RetryPolicy::default())?;
    for f in set.failovers() {
        eprintln!(
            "failover: replica {} -> {} at {:.0}s (epoch {}, {} log entries caught up)",
            f.from,
            f.to,
            f.at.as_micros() as f64 / 1e6,
            f.epoch,
            f.caught_up,
        );
    }
    eprintln!(
        "replica set: {} members, primary {}, {} entries sequenced, applied per member: {:?}",
        set.hosts().len(),
        set.primary(),
        set.sequenced(),
        set.applied(),
    );
    eprintln!(
        "client: {} ops applied, {} retried, {} degraded answers, {} abandoned",
        report.applied, report.retries, report.degraded_answers, report.abandoned
    );
    persist_storage_flag(flags, &set.hosts()[set.primary()])?;
    let service = set
        .primary_service()
        .ok_or("the replica set ended the run with no member up")?;
    service_summary(service, flags.has("--json"));
    write_checkpoint_flag(flags, service)?;
    Ok(())
}

/// Honors `--journal-dir DIR` after a hosted serve run: writes the
/// journal manifest, every live segment, and the checkpoint ring —
/// the storage `replay --from-checkpoint` re-hosts.
fn persist_storage_flag(flags: &Flags, host: &ServiceHost) -> Result<(), String> {
    let Some(dir) = flags.get("--journal-dir") else {
        return Ok(());
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let write = |name: String, bytes: &[u8]| -> Result<(), String> {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, bytes).map_err(|e| format!("cannot write {path}: {e}"))
    };
    write("manifest.tsnm".into(), &host.journal().manifest_bytes())?;
    for segment in host.journal().segments() {
        write(format!("seg-{:08}.tsnj", segment.index()), segment.bytes())?;
    }
    for (k, stored) in host.stored_checkpoints().iter().enumerate() {
        write(format!("ckpt-{k}.tsnc"), &stored.bytes)?;
    }
    eprintln!(
        "storage: manifest + {} segments + {} checkpoints -> {dir}",
        host.journal().segments().len(),
        host.stored_checkpoints().len(),
    );
    Ok(())
}

/// Honors `--checkpoint FILE` after a serve run.
fn write_checkpoint_flag(flags: &Flags, service: &TrustService) -> Result<(), String> {
    if let Some(path) = flags.get("--checkpoint") {
        let bytes = service.checkpoint()?;
        std::fs::write(path, &bytes)
            .map_err(|e| format!("cannot write checkpoint to {path}: {e}"))?;
        eprintln!("checkpoint: {} bytes -> {path}", bytes.len());
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    if flags.has("--from-checkpoint") {
        return replay_from_storage(&flags);
    }
    let path = flags
        .get("--checkpoint")
        .ok_or("replay needs --checkpoint FILE (or --from-checkpoint --journal-dir DIR)")?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read checkpoint {path}: {e}"))?;
    let (mut service, restored_path, restored_len) = match TrustService::restore(&bytes) {
        Ok(service) => (service, path, bytes.len()),
        Err(error) => {
            // Per-section CRCs caught damage; name the bad sections and
            // fall back to the previous checkpoint when one was given.
            eprintln!("checkpoint {path} is unusable: {error}");
            if let Ok(sections) = checkpoint_sections(&bytes) {
                for section in sections.iter().filter(|s| !s.crc_ok) {
                    eprintln!(
                        "  section '{}' fails its CRC ({} bytes at offset {})",
                        section.name, section.len, section.offset
                    );
                }
            }
            let Some(fallback) = flags.get("--fallback") else {
                return Err(format!(
                    "cannot restore {path} and no --fallback checkpoint was given: {error}"
                ));
            };
            eprintln!("falling back to {fallback}");
            let previous = std::fs::read(fallback)
                .map_err(|e| format!("cannot read fallback checkpoint {fallback}: {e}"))?;
            let len = previous.len();
            (TrustService::restore(&previous)?, fallback, len)
        }
    };
    eprintln!(
        "restored {} nodes at epoch {} from {restored_path} ({restored_len} bytes)",
        service.config().nodes,
        service.epoch_index(),
    );
    let extra: u64 = flags.parse("--epochs", 0)?;
    let restored_epochs = service.epoch_index();
    let driver = ServiceDriver::new(driver_config(&flags, service.config().nodes)?)?;
    if extra > 0 {
        driver.drive(&mut service, extra)?;
    }
    if flags.has("--verify") {
        // The checkpoint contract: restore + continue must equal an
        // uninterrupted run, bit for bit.
        let mut fresh = TrustService::new(service.config().clone())?;
        driver.drive(&mut fresh, restored_epochs + extra)?;
        let a = service.scores();
        let b = fresh.scores();
        let scores_identical =
            a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits());
        if !scores_identical {
            return Err(
                "verify FAILED: restored run's scores diverged from the scratch run".into(),
            );
        }
        // Scores could agree by luck; the committed sample series and
        // lifetime counters pin the whole history.
        if service.samples() != fresh.samples() {
            return Err(
                "verify FAILED: restored run's epoch samples diverged from the scratch run".into(),
            );
        }
        if service.stats() != fresh.stats() {
            return Err(format!(
                "verify FAILED: restored run's counters diverged: {:?} vs {:?}",
                service.stats(),
                fresh.stats()
            ));
        }
        eprintln!(
            "verify: restored+continued run is bit-identical to an uninterrupted {}-epoch run",
            restored_epochs + extra
        );
    }
    service_summary(&service, flags.has("--json"));
    Ok(())
}

/// `replay --from-checkpoint --journal-dir DIR`: restore through the
/// **real recovery path** — newest CRC-valid checkpoint from the ring
/// plus segment-suffix journal replay — instead of recomputing from
/// scratch, then (with `--verify`) compare bits against a full replay.
fn replay_from_storage(flags: &Flags) -> Result<(), String> {
    let dir = flags
        .get("--journal-dir")
        .ok_or("replay --from-checkpoint needs --journal-dir DIR")?;
    let manifest_path = format!("{dir}/manifest.tsnm");
    let manifest = std::fs::read(&manifest_path)
        .map_err(|e| format!("cannot read journal manifest {manifest_path}: {e}"))?;
    let journal = EventJournal::from_storage(&manifest, |index| {
        let path = format!("{dir}/seg-{index:08}.tsnj");
        std::fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))
    })?;
    let mut checkpoints = Vec::new();
    loop {
        let path = format!("{dir}/ckpt-{}.tsnc", checkpoints.len());
        match std::fs::read(&path) {
            Ok(bytes) => checkpoints.push(bytes),
            Err(_) => break,
        }
    }
    if checkpoints.is_empty() {
        eprintln!("no stored checkpoints in {dir}: recovery will replay the whole journal");
    }
    // The storage carries no service config; rebuild it from the same
    // flags the serve run used.
    let nodes: usize = flags.parse("--nodes", 100)?;
    let mut config = ServiceConfig {
        nodes,
        epoch: SimDuration::from_secs(flags.parse("--epoch-secs", 60u64)?),
        ..ServiceConfig::default()
    };
    if let Some(raw) = flags.get("--mechanism") {
        config.mechanism = parse_mechanism(raw)?;
    }
    if let Some(raw) = flags.get("--disclosure") {
        config.disclosure_level = parse_disclosure(raw)?.index();
    }
    let host_config = HostConfig {
        service: config,
        recovery_grace: SimDuration::ZERO,
        ..HostConfig::default()
    };
    let mut host = ServiceHost::from_storage(host_config, checkpoints, journal)?;
    let report = host.restart(SimTime::ZERO)?.clone();
    eprintln!(
        "recovered from {} ({} records replayed, {} segments opened, {} skipped, \
         fallbacks: {}, torn tail: {})",
        if report.from_scratch {
            "scratch (no usable checkpoint)"
        } else {
            "the newest valid checkpoint"
        },
        report.replayed,
        report.segments_opened,
        report.segments_skipped,
        report.fallbacks,
        report.torn_tail,
    );
    for error in &report.corrupt {
        eprintln!("  skipped checkpoint: {error}");
    }
    let restored_epochs = host
        .service()
        .ok_or("recovery left no running service")?
        .epoch_index();
    eprintln!(
        "restored {} nodes at epoch {restored_epochs} from {dir}",
        host.config().service.nodes
    );
    let extra: u64 = flags.parse("--epochs", 0)?;
    let driver = ServiceDriver::new(driver_config(flags, host.config().service.nodes)?)?;
    if extra > 0 {
        driver.drive_host(&mut host, extra, &RetryPolicy::default())?;
    }
    let service = host.service().ok_or("the service ended the run down")?;
    if flags.has("--verify") {
        // The recovery contract, exercised end to end: checkpoint +
        // segment-suffix replay + continue must equal recomputing the
        // whole history from scratch, bit for bit.
        let mut fresh = TrustService::new(service.config().clone())?;
        driver.drive(&mut fresh, restored_epochs + extra)?;
        let a = service.scores();
        let b = fresh.scores();
        let scores_identical =
            a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits());
        if !scores_identical {
            return Err("verify FAILED: recovered run's scores diverged from full replay".into());
        }
        if service.samples() != fresh.samples() {
            return Err(
                "verify FAILED: recovered run's epoch samples diverged from full replay".into(),
            );
        }
        if service.stats() != fresh.stats() {
            return Err(format!(
                "verify FAILED: recovered run's counters diverged: {:?} vs {:?}",
                service.stats(),
                fresh.stats()
            ));
        }
        eprintln!(
            "verify: recovery path ({} records replayed on a checkpoint) is bit-identical \
             to a full {}-epoch replay",
            report.replayed,
            restored_epochs + extra
        );
    }
    service_summary(service, flags.has("--json"));
    Ok(())
}

fn cmd_dynamics(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let mut config = DynamicsConfig::default();
    config.honest_fraction = flags.parse("--honest", config.honest_fraction)?;
    config.eta = flags.parse("--eta", config.eta)?;
    config.validate()?;
    let dynamics = InteractionDynamics::new(config);
    let (state, steps) = dynamics.fixed_point(DynamicsState::neutral(), 1e-10, 100_000);
    println!(
        "fixed point after {steps} steps (honest_fraction={}):",
        config.honest_fraction
    );
    println!("  trust                 = {:.4}", state.trust);
    println!("  satisfaction          = {:.4}", state.satisfaction);
    println!(
        "  reputation efficiency = {:.4}",
        state.reputation_efficiency
    );
    println!("  disclosure            = {:.4}", state.disclosure);
    println!("  privacy               = {:.4}", state.privacy);
    Ok(())
}
