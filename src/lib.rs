//! # tsn — Trust your Social Network
//!
//! Facade crate for the reproduction of *"Trust your Social Network
//! According to Satisfaction, Reputation and Privacy"* (Busnel,
//! Serrano-Alvarado, Lamarre, 2010).
//!
//! The workspace implements the fully decentralized social network the
//! paper argues for, plus the three facets the paper couples together:
//!
//! * [`simnet`] — deterministic discrete-event P2P simulator;
//! * [`graph`] — social-graph generators and metrics;
//! * [`reputation`] — EigenTrust, Beta, PowerTrust, TrustMe-style
//!   mechanisms, anonymized variants and adversary models;
//! * [`privacy`] — P3P/PriServ-style privacy policies, enforcement,
//!   OECD audit, disclosure ledger;
//! * [`protocol`] — gossip and DHT-manager protocols realizing the
//!   reputation facet fully decentralized over the simulator;
//! * [`satisfaction`] — the Quiané-Ruiz adequacy/satisfaction model;
//! * [`core`] — the paper's contribution: the three facet scores, the
//!   combined trust metric, the Section-3 interaction dynamics, and the
//!   settings optimizer;
//! * [`service`] — the online mode: a long-lived [`service::TrustService`]
//!   with streaming ingest, incremental (delta) trust updates,
//!   bounded-staleness queries and bit-identical checkpoint/restore.
//!
//! See `examples/quickstart.rs` for a end-to-end tour and DESIGN.md for
//! the full system inventory.

#![forbid(unsafe_code)]

pub use tsn_core as core;
pub use tsn_graph as graph;
pub use tsn_privacy as privacy;
pub use tsn_protocol as protocol;
pub use tsn_reputation as reputation;
pub use tsn_satisfaction as satisfaction;
pub use tsn_service as service;
pub use tsn_simnet as simnet;

/// Commonly used items, for `use tsn::prelude::*`.
pub mod prelude {
    pub use tsn_core::runner::{
        DisclosureLevel, Observer, ProgressPrinter, ScenarioBuilder, SeriesRecorder, SweepGrid,
        SweepReport, SweepRunner, ValidationError,
    };
    pub use tsn_core::{
        FacetScores, FacetWeights, Scenario, ScenarioConfig, ScenarioOutcome, TrustMetric,
        TrustReport,
    };
    pub use tsn_reputation::MechanismKind;
    pub use tsn_service::{
        DriverConfig, HostConfig, RetryPolicy, ServiceConfig, ServiceDriver, ServiceEvent,
        ServiceHost, ServiceOp, Staleness, TrustService,
    };
    pub use tsn_simnet::{
        DynamicsPlan, DynamicsRuntime, FaultInjector, FaultPlan, NodeId, PartitionWindow,
        SimDuration, SimRng, SimTime, Simulation,
    };
}
