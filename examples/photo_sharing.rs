//! A decentralized photo-sharing community — the workload the paper's
//! introduction motivates (users publishing personal content on a
//! Facebook-like system, but fully decentralized).
//!
//! This example drops below the scenario engine and drives the substrate
//! APIs directly: a small-world friendship graph, per-user privacy
//! policies over photo albums, the PriServ-style enforcement engine, and
//! a Beta reputation mechanism fed by (policy-filtered) feedback.
//!
//! Run with:
//! ```text
//! cargo run --example photo_sharing
//! ```

use tsn::graph::{generators, metrics};
use tsn::privacy::enforcement::RequestContext;
use tsn::privacy::{
    AccessRequest, DataCategory, DisclosureLedger, Enforcer, Operation, PrivacyPolicy, Purpose,
};
use tsn::reputation::{
    BetaReputation, DisclosurePolicy, FeedbackReport, InteractionOutcome, ReputationMechanism,
};
use tsn::simnet::{NodeId, SimRng, SimTime};

fn main() {
    let n = 60;
    let mut rng = SimRng::seed_from_u64(7);

    // Friendship graph: small-world, as real social networks are.
    let graph = generators::watts_strogatz(n, 6, 0.1, &mut rng).expect("valid parameters");
    println!(
        "community: {} users, {} friendships, clustering {:.2}",
        graph.node_count(),
        graph.edge_count(),
        metrics::average_clustering(&graph)
    );

    // Every user's photo album is governed by their own privacy policy:
    // a third keep them strictly friends-only, the rest are permissive.
    let policies: Vec<PrivacyPolicy> = (0..n)
        .map(|i| {
            if i % 3 == 0 {
                PrivacyPolicy::strict(DataCategory::Content)
            } else {
                PrivacyPolicy::permissive(DataCategory::Content)
            }
        })
        .collect();

    let enforcer = Enforcer::new();
    let mut ledger = DisclosureLedger::new();
    let mut reputation = BetaReputation::new(n);
    let disclosure = DisclosurePolicy::full();
    let mut granted = 0u32;
    let mut denied = 0u32;

    // A week of browsing: users request photos from friends-of-friends.
    for day in 0..7u64 {
        let now = SimTime::from_secs(day * 86_400);
        for _ in 0..200 {
            let viewer = NodeId(rng.gen_range(0..n as u32));
            let owner = NodeId(rng.gen_range(0..n as u32));
            if viewer == owner {
                continue;
            }
            let distance = graph.bfs_distances(viewer)[owner.index()];
            let request = AccessRequest {
                requester: viewer,
                owner,
                operation: Operation::Read,
                purpose: Purpose::Social,
            };
            let context = RequestContext {
                social_distance: distance,
                requester_trust: reputation.score(viewer),
            };
            let decision = enforcer.decide(&request, &policies[owner.index()], &context);
            if decision.is_granted() {
                granted += 1;
                ledger.record_disclosure(
                    now,
                    owner,
                    viewer,
                    DataCategory::Content,
                    Purpose::Social,
                    false,
                );
                // The viewer rates the album (quality depends on the owner
                // being a conscientious curator — modelled as id parity).
                let quality = if owner.0.is_multiple_of(5) { 0.3 } else { 0.9 };
                let outcome = if rng.gen_bool(quality) {
                    InteractionOutcome::Success { quality }
                } else {
                    InteractionOutcome::Failure
                };
                let report = FeedbackReport {
                    rater: viewer,
                    ratee: owner,
                    outcome,
                    topic: None,
                    at: now,
                };
                reputation.record(&disclosure.view(&report));
            } else {
                denied += 1;
            }
        }
        reputation.refresh();
    }

    println!("\nafter one simulated week:");
    println!("  photo requests granted: {granted}, denied by policy: {denied}");
    println!(
        "  disclosures on ledger: {}, respect rate {:.3}",
        ledger.len(),
        ledger.respect_rate()
    );

    // Reputation has learned who curates well.
    let mut scored: Vec<(NodeId, f64)> = (0..n as u32)
        .map(NodeId)
        .map(|u| (u, reputation.score(u)))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    println!("\n  best-curated albums: {:?}", &scored[..3]);
    println!("  worst-curated albums: {:?}", &scored[n - 3..]);
    let sloppy_curators_low = scored[n - 3..].iter().all(|(u, _)| u.0 % 5 == 0);
    println!("  bottom three are all sloppy curators: {sloppy_curators_low}");
}
