//! Mega-scale scenario: one run, a hundred thousand (or a million)
//! users on the sharded round engine.
//!
//! ```text
//! cargo run --release --example mega_scale                  # 20k × 5 rounds (CI smoke)
//! MEGA_NODES=100000 MEGA_ROUNDS=20 \
//!     cargo run --release --example mega_scale              # the bench lane's workload
//! MEGA_NODES=1000000 MEGA_ROUNDS=3 \
//!     cargo run --release --example mega_scale              # a million users
//! ```
//!
//! The outcome is a pure function of `(config, seed)`: the shard count
//! (and the core count executing it) never changes a bit of the result,
//! which the run demonstrates by executing the same scenario with two
//! different shard counts and comparing outcomes.

use std::time::Instant;
use tsn::core::runner::ScenarioBuilder;

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        // A set-but-invalid value must fail loudly naming the culprit,
        // not silently fall back to the default workload.
        Ok(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid value for {name}: {raw:?} (expected a non-negative integer)");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let nodes = env_usize("MEGA_NODES", 20_000);
    let rounds = env_usize("MEGA_ROUNDS", 5);
    println!("mega-scale scenario: {nodes} nodes × {rounds} rounds (sharded engine)");

    // tsn-lint: allow(wall-clock, "demo prints wall-clock throughput; the simulation itself runs on the sim clock")
    let start = Instant::now();
    let outcome = ScenarioBuilder::mega(nodes)
        .rounds(rounds)
        .seed(42)
        .run()
        .expect("mega preset is valid");
    let elapsed = start.elapsed();

    println!(
        "ran {} interactions / {} messages in {elapsed:.2?} \
         ({:.0} node-rounds/s)",
        outcome.interactions,
        outcome.messages,
        (nodes * rounds) as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "global trust {:.4}  facets: privacy {:.4} reputation {:.4} satisfaction {:.4}",
        outcome.global_trust,
        outcome.facets.privacy,
        outcome.facets.reputation,
        outcome.facets.satisfaction,
    );

    // Shard-count invariance, demonstrated live on a scaled-down copy
    // (fast enough for CI): 2 shards and 7 shards, bit-identical trust.
    let small = nodes.min(10_000);
    let run_with = |shards: usize| {
        ScenarioBuilder::mega(small)
            .rounds(3)
            .seed(42)
            .build_scenario()
            .expect("valid config")
            .run_sharded(shards)
    };
    let (a, b) = (run_with(2), run_with(7));
    assert_eq!(
        a.global_trust.to_bits(),
        b.global_trust.to_bits(),
        "shard count must not change the outcome"
    );
    assert_eq!(a.per_user_trust, b.per_user_trust);
    println!("shard-count invariance check: 2 shards == 7 shards ✓");
}
