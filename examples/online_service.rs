//! Online mode: a long-lived TrustService under a streaming workload,
//! checkpointed mid-flight and resumed bit-identically.
//!
//! ```text
//! cargo run --release --example online_service
//! SERVICE_NODES=10000 SERVICE_ARRIVALS=4 \
//!     cargo run --release --example online_service
//! ```
//!
//! The batch layers answer "what happens over N rounds"; this example
//! shows the deployed shape of the same system: events and queries
//! interleave on one sim clock, trust updates land as per-epoch deltas,
//! and the whole service snapshots to bytes at an arbitrary point.

use tsn::prelude::*;

fn main() {
    // Workload knobs come from SERVICE_* env vars (invalid values fail
    // naming the variable); the service itself mirrors the population.
    let workload = DriverConfig::from_env().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let config = ServiceConfig {
        nodes: workload.nodes,
        epoch: SimDuration::from_secs(60),
        ..ServiceConfig::default()
    };
    println!(
        "online service: {} nodes, {}s epochs, {} arrivals/node/epoch",
        config.nodes,
        config.epoch.as_micros() / 1_000_000,
        workload.arrival_rate,
    );

    let mut service = TrustService::new(config).expect("valid config");
    let driver = ServiceDriver::new(workload).expect("valid workload");

    // Phase 1: five epochs of open-loop traffic.
    driver.drive(&mut service, 5).expect("clean drive");
    for s in service.samples() {
        println!(
            "  epoch {:>2}: {:>5} events committed, mean score {:.4} ({} iterations)",
            s.epoch, s.committed, s.mean_score, s.refresh_iterations
        );
    }

    // A query between epoch boundaries sees the last commit, with an
    // explicit staleness bound.
    let at = service.now() + SimDuration::from_secs(12);
    let q = service.query_trust(NodeId(0), at).expect("valid query");
    println!(
        "query at +12s: score {:.4}, staleness {}ms (bounded by one epoch)",
        q.score,
        q.staleness.as_micros() / 1000
    );

    // Checkpoint mid-epoch (the query above left the clock inside
    // epoch 5), resume in a fresh instance, and continue both.
    let bytes = service.checkpoint().expect("eigentrust checkpoints");
    println!("checkpoint: {} bytes", bytes.len());
    let mut resumed = TrustService::restore(&bytes).expect("valid checkpoint");
    driver.drive(&mut service, 3).expect("clean drive");
    driver.drive(&mut resumed, 3).expect("clean drive");

    let diverged = service
        .scores()
        .iter()
        .zip(resumed.scores().iter())
        .any(|(a, b)| a.to_bits() != b.to_bits());
    assert!(!diverged, "restore must continue bit-identically");
    println!("restore + 3 epochs == uninterrupted + 3 epochs, bit for bit ✓");

    let stats = service.stats();
    println!(
        "totals: {} events ingested, {} queries answered, {} commits",
        stats.ingested, stats.queries, stats.commits
    );
}
