//! Trade-off explorer: walk the disclosure ladder and watch the paper's
//! Figure-2 antagonism live, then let the optimizer find "Area A".
//!
//! Run with:
//! ```text
//! cargo run --release --example tradeoff_explorer
//! ```

use tsn::core::{FacetScores, Optimizer, ScenarioConfig, TrustMetric};
use tsn::core::scenario::run_scenario;

fn main() {
    println!("disclosure ladder sweep (EigenTrust, mixed policies, 20% malicious)\n");
    println!("level  shared-info  privacy  reputation  satisfaction  trust");
    for level in 0..5 {
        // Average over a few seeds per level.
        let (mut p, mut r, mut s, mut t, mut e) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let seeds = 3;
        for seed in 0..seeds {
            let mut config = ScenarioConfig::default();
            config.nodes = 80;
            config.rounds = 20;
            config.disclosure_level = level;
            config.seed = 500 + seed;
            let outcome = run_scenario(config.clone()).expect("valid config");
            p += outcome.facets.privacy;
            r += outcome.facets.reputation;
            s += outcome.facets.satisfaction;
            t += outcome.global_trust;
            e += config.disclosure_policy().exposure();
        }
        let k = seeds as f64;
        println!(
            "{level:>5}  {:>11.2}  {:>7.3}  {:>10.3}  {:>12.3}  {:>5.3}",
            e / k,
            p / k,
            r / k,
            s / k,
            t / k
        );
    }

    println!("\nsearching for Area A (all facets >= threshold)...");
    let base = ScenarioConfig {
        nodes: 60,
        rounds: 12,
        ..ScenarioConfig::default()
    };
    let mut optimizer =
        Optimizer::new(base, TrustMetric::default()).expect("valid base configuration");
    optimizer.seeds_per_point = 1;
    let sweep = optimizer.sweep();
    let thresholds = FacetScores::new(0.5, 0.55, 0.35).expect("valid thresholds");
    let report = optimizer.area_report(&sweep, thresholds);
    println!(
        "  regions: privacy {} / reputation {} / satisfaction {} of {} configs",
        report.privacy_region, report.reputation_region, report.satisfaction_region, report.total
    );
    println!("  Area A (all three): {} configs", report.area_a);

    let best = optimizer.best(&sweep, Some(thresholds));
    println!(
        "\n  best configuration{}:",
        if best.in_area_a { " (inside Area A)" } else { " (Area A empty — unconstrained)" }
    );
    println!(
        "    mechanism={} disclosure={} policies={} -> {}  trust={:.3}",
        best.best.mechanism,
        best.best.disclosure_level,
        best.best.policy_profile.label(),
        best.best.facets,
        best.best.trust
    );
}
