//! Trade-off explorer: walk the disclosure ladder and watch the paper's
//! Figure-2 antagonism live, then let the optimizer find "Area A".
//!
//! Run with:
//! ```text
//! cargo run --release --example tradeoff_explorer
//! ```

use tsn::core::runner::{ScenarioBuilder, SweepGrid, SweepRunner};
use tsn::core::{FacetScores, Optimizer, TrustMetric};

fn main() {
    println!("disclosure ladder sweep (EigenTrust, mixed policies, 20% malicious)\n");
    println!("level  shared-info  privacy  reputation  satisfaction  trust");
    // One parallel sweep replaces the per-level, per-seed loops: the
    // full ladder × three seeds, averaged per level.
    let grid = SweepGrid::over(ScenarioBuilder::new().nodes(80).rounds(20))
        .all_disclosures()
        .seeds(500..503);
    let report = SweepRunner::parallel().run(&grid).expect("valid grid");
    for (level, facets, trust) in report.mean_by(|c| c.cell.disclosure) {
        println!(
            "{:>5}  {:>11.2}  {:>7.3}  {:>10.3}  {:>12.3}  {:>5.3}",
            level.index(),
            level.exposure(),
            facets.privacy,
            facets.reputation,
            facets.satisfaction,
            trust
        );
    }

    println!("\nsearching for Area A (all facets >= threshold)...");
    let base = ScenarioBuilder::new()
        .nodes(60)
        .rounds(12)
        .build()
        .expect("valid base configuration");
    let mut optimizer =
        Optimizer::new(base, TrustMetric::default()).expect("valid base configuration");
    optimizer.seeds_per_point = 1;
    let sweep = optimizer.sweep();
    let thresholds = FacetScores::new(0.5, 0.55, 0.35).expect("valid thresholds");
    let report = optimizer.area_report(&sweep, thresholds);
    println!(
        "  regions: privacy {} / reputation {} / satisfaction {} of {} configs",
        report.privacy_region, report.reputation_region, report.satisfaction_region, report.total
    );
    println!("  Area A (all three): {} configs", report.area_a);

    let best = optimizer.best(&sweep, Some(thresholds));
    println!(
        "\n  best configuration{}:",
        if best.in_area_a {
            " (inside Area A)"
        } else {
            " (Area A empty — unconstrained)"
        }
    );
    println!(
        "    mechanism={} disclosure={} policies={} -> {}  trust={:.3}",
        best.best.mechanism,
        best.best.disclosure_level,
        best.best.policy_profile.label(),
        best.best.facets,
        best.best.trust
    );
}
