//! A realistic substrate: churn, a partition that heals, and WAN
//! regions — the dynamics layer end-to-end.
//!
//! Three gossip runs over the same overlay and evidence:
//!
//! 1. a **stable LAN** baseline;
//! 2. a **churny WAN** (session-based joins/leaves/crashes over two
//!    slow-linked regions, with whitewashing re-joins);
//! 3. a **split-then-heal** schedule: a clean two-way partition for the
//!    first 20 rounds, healed mid-run by the dynamics runtime.
//!
//! Run with:
//! ```text
//! cargo run --release --example churn_partition
//! ```

use tsn::graph::generators;
use tsn::protocol::{GossipConfig, GossipNetwork};
use tsn::simnet::{
    dynamics::DynamicsPlan, latency::ConstantLatency, ChurnConfig, Network, NetworkConfig, NoLoss,
    NodeId, SimDuration, SimRng, SimTime,
};

const N: usize = 60;

fn fresh_gossip(seed: u64) -> GossipNetwork {
    let mut rng = SimRng::seed_from_u64(seed);
    let graph = generators::watts_strogatz(N, 6, 0.1, &mut rng).expect("valid overlay");
    let config = NetworkConfig {
        latency: Box::new(ConstantLatency(SimDuration::from_millis(10))),
        loss: Box::new(NoLoss),
    };
    let mut network = Network::new(config, rng.fork(1));
    for _ in 0..N {
        network.add_node();
    }
    let mut gossip = GossipNetwork::new(
        graph,
        network,
        GossipConfig {
            subjects: N,
            ..Default::default()
        },
        rng.fork(2),
    );
    // Everyone has local experiences; providers below 12 are bad.
    let mut obs = SimRng::seed_from_u64(seed ^ 0xBEEF);
    for _ in 0..N * 8 {
        let observer = NodeId(obs.gen_range(0..N as u32));
        let subject = obs.gen_range(0..N);
        let quality = if subject < 12 { 0.15 } else { 0.9 };
        let value = (quality + obs.gen_normal(0.0, 0.05)).clamp(0.0, 1.0);
        gossip.observe(observer, subject, value);
    }
    gossip
}

fn main() {
    println!("gossip over {N} nodes, 40 rounds each\n");

    // 1. Stable LAN baseline.
    let mut stable = fresh_gossip(7);
    stable.run(40);
    print_summary("stable-lan", &stable);

    // 2. Churny WAN: two slow-linked regions, session churn with
    //    whitewashing.
    let mut churny = fresh_gossip(7);
    let mut plan =
        DynamicsPlan::wan_regions(2, SimDuration::from_millis(5), SimDuration::from_millis(80));
    plan.churn = Some(ChurnConfig {
        mean_session: SimDuration::from_millis(1_200), // ~12 rounds
        mean_downtime: SimDuration::from_millis(400),
        whitewash_probability: 0.2,
        crash_fraction: 0.5,
    });
    churny
        .attach_dynamics(plan, SimRng::seed_from_u64(8))
        .expect("valid plan");
    churny.run(40);
    print_summary("churny-wan", &churny);

    // 3. Split for 20 rounds, then heal mid-run.
    let mut split = fresh_gossip(7);
    split
        .attach_dynamics(
            DynamicsPlan::split_then_heal(SimTime::ZERO, SimTime::from_millis(2_050)),
            SimRng::seed_from_u64(9),
        )
        .expect("valid plan");
    split.run(20);
    print_summary("split (mid)", &split);
    split.run(20);
    print_summary("split-healed", &split);

    println!("\nnode 5's local verdict on provider 3 (bad) / 30 (good):");
    for (label, gossip) in [
        ("stable-lan", &stable),
        ("churny-wan", &churny),
        ("split-healed", &split),
    ] {
        println!(
            "  {label:<13} {:>5.3} / {:>5.3}   (oracles {:>5.3} / {:>5.3})",
            gossip.estimate(NodeId(5), 3),
            gossip.estimate(NodeId(5), 30),
            gossip.oracle(3),
            gossip.oracle(30),
        );
    }
}

fn print_summary(label: &str, gossip: &GossipNetwork) {
    let r = gossip.report();
    let (availability, health) = gossip
        .dynamics()
        .map_or((1.0, 1.0), |d| (d.availability(), d.partition_health()));
    println!(
        "{label:<13} rounds {:>3}  mean|err| {:>7.4}  max|err| {:>7.4}  \
         availability {availability:>4.2}  partition-health {health:>4.2}",
        r.costs.rounds, r.mean_error, r.max_error
    );
}
