//! Quickstart: build a decentralized social network, measure its three
//! facets, and read the trust verdict.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use tsn::core::runner::ScenarioBuilder;
use tsn::core::{Aggregator, FacetWeights, TrustMetric};

fn main() {
    // 1. Configure the system through the builder: 100 users on a
    //    small-world graph, 20 % malicious, EigenTrust over fully
    //    disclosed feedback (the defaults), and run it. Invalid knobs
    //    would be rejected here with the offending field named.
    let outcome = ScenarioBuilder::new()
        .nodes(100)
        .rounds(25)
        .seed(2010) // the paper's year; any seed reproduces bit-for-bit
        .run()
        .expect("configuration is valid");

    // 2. The three facets of the paper, each measured (not assumed).
    println!("== facets ==");
    println!(
        "privacy      = {:.3}  (non-disclosure, PP respect, OECD audit)",
        outcome.facets.privacy
    );
    println!(
        "reputation   = {:.3}  (consistency, reliability, efficiency)",
        outcome.facets.reputation
    );
    println!(
        "satisfaction = {:.3}  (long-run, fairness-discounted)",
        outcome.facets.satisfaction
    );

    // 3. Trust toward the system — the paper's combined metric.
    println!("\n== trust toward the system ==");
    println!("global trust        = {:.3}", outcome.global_trust);
    let mean_user =
        outcome.per_user_trust.iter().sum::<f64>() / outcome.per_user_trust.len() as f64;
    println!("mean per-user trust = {mean_user:.3}");

    // 4. Privacy accounting detail.
    println!("\n== privacy ledger ==");
    println!("policy respect rate  = {:.3}", outcome.respect_rate);
    println!("user-caused breaches = {}", outcome.user_breaches);
    println!("system breaches      = {}", outcome.system_breaches);
    println!("OECD audit           = {:.3}", outcome.oecd_score);

    // 5. The metric is configurable: compare aggregators on the same run.
    println!("\n== aggregator comparison (same facets) ==");
    for aggregator in [
        Aggregator::Geometric,
        Aggregator::Arithmetic,
        Aggregator::Minimum,
    ] {
        let metric = TrustMetric::new(FacetWeights::default(), aggregator).expect("valid metric");
        println!(
            "{:<11} -> trust {:.3}",
            aggregator.label(),
            metric.trust(&outcome.facets)
        );
    }
}
