//! Attack resilience: how each reputation mechanism holds up as the
//! malicious fraction grows — the classic EigenTrust-style evaluation,
//! run on the tsn substrate (adversaries lie in feedback and collude).
//!
//! Run with:
//! ```text
//! cargo run --release --example attack_resilience
//! ```

use tsn::reputation::{
    testbed::run_testbed, MechanismKind, PopulationConfig, SelectionPolicy, TestbedConfig,
};

fn main() {
    println!("honest-consumer success rate vs malicious fraction");
    println!("(100 users, 30 rounds, proportional selection; higher is better)\n");
    print!("{:<12}", "mechanism");
    let fractions = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    for f in fractions {
        print!("  {:>6}", format!("{:.0}%", f * 100.0));
    }
    println!();

    for mechanism in MechanismKind::ALL {
        print!("{:<12}", mechanism.name());
        for malicious in fractions {
            // Average three seeds so single runs don't mislead.
            let mut total = 0.0;
            for seed in 0..3 {
                let config = TestbedConfig {
                    nodes: 100,
                    rounds: 30,
                    population: PopulationConfig::with_malicious(malicious),
                    mechanism,
                    selection: if mechanism == MechanismKind::None {
                        SelectionPolicy::Random
                    } else {
                        SelectionPolicy::Proportional { sharpness: 2.0 }
                    },
                    seed: 1000 + seed,
                    ..Default::default()
                };
                total += run_testbed(config)
                    .expect("valid config")
                    .honest_success_rate;
            }
            print!("  {:>6.3}", total / 3.0);
        }
        println!();
    }

    println!("\ncollusion stress: 30% colluders in rings of 5");
    for mechanism in [
        MechanismKind::Beta,
        MechanismKind::EigenTrust,
        MechanismKind::TrustMe,
    ] {
        let config = TestbedConfig {
            nodes: 100,
            rounds: 30,
            population: PopulationConfig {
                colluder: 0.3,
                ring_size: 5,
                ..Default::default()
            },
            mechanism,
            pretrusted: 5,
            seed: 99,
            ..Default::default()
        };
        let summary = run_testbed(config).expect("valid config");
        println!(
            "  {:<11} honest-success {:.3}  consistency {:.3}  adversary-detection {:.3}",
            mechanism.name(),
            summary.honest_success_rate,
            summary.power.consistency,
            summary.power.reliability
        );
    }
}
