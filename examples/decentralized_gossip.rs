//! Fully decentralized reputation: no aggregator, only gossip.
//!
//! The paper's goal is "the deployment of fully decentralized
//! architectures". This example scores providers with *zero* central
//! state: every node holds only its own experiences and a push-sum
//! gossip exchange converges all nodes to the global verdict.
//!
//! Run with:
//! ```text
//! cargo run --release --example decentralized_gossip
//! ```

use tsn::graph::generators;
use tsn::protocol::{GossipConfig, GossipNetwork};
use tsn::simnet::{
    latency::WanLatency, BernoulliLoss, Network, NetworkConfig, NodeId, SimDuration, SimRng,
};

fn main() {
    let n = 50;
    let mut rng = SimRng::seed_from_u64(42);

    // A WAN-ish network: 20ms base latency with a heavy tail, 5% loss.
    let config = NetworkConfig {
        latency: Box::new(WanLatency {
            base: SimDuration::from_millis(20),
            tail_mean: SimDuration::from_millis(15),
        }),
        loss: Box::new(BernoulliLoss::new(0.05)),
    };
    let mut network = Network::new(config, rng.fork(1));
    for _ in 0..n {
        network.add_node();
    }

    let graph = generators::watts_strogatz(n, 6, 0.1, &mut rng).expect("valid parameters");
    let mut gossip = GossipNetwork::new(
        graph,
        network,
        GossipConfig {
            subjects: n,
            round_length: SimDuration::from_millis(150),
            ..Default::default()
        },
        rng.fork(2),
    );

    // Local experiences only: each node observed a few interactions.
    // Nodes 0..10 are bad providers; the rest are good.
    for _ in 0..n * 8 {
        let observer = NodeId(rng.gen_range(0..n as u32));
        let subject = rng.gen_range(0..n);
        let quality = if subject < 10 { 0.15 } else { 0.9 };
        let value = (quality + rng.gen_normal(0.0, 0.05)).clamp(0.0, 1.0);
        gossip.observe(observer, subject, value);
    }

    println!("round  mean|err|   max|err|   messages");
    for checkpoint in [0usize, 5, 10, 20, 40] {
        while gossip.report().costs.rounds < checkpoint as u64 {
            gossip.round();
        }
        let r = gossip.report();
        println!(
            "{checkpoint:>5}  {:>9.4}  {:>9.4}  {:>9}",
            r.mean_error, r.max_error, r.costs.messages
        );
    }

    // Every node can now score any provider locally.
    let probe = NodeId(17);
    println!("\nnode {probe}'s local verdicts (no server was involved):");
    println!(
        "  provider 3 (bad):   {:.3} (oracle {:.3})",
        gossip.estimate(probe, 3),
        gossip.oracle(3)
    );
    println!(
        "  provider 30 (good): {:.3} (oracle {:.3})",
        gossip.estimate(probe, 30),
        gossip.oracle(30)
    );
    let separates = gossip.estimate(probe, 30) > gossip.estimate(probe, 3);
    println!("  good outranks bad locally: {separates}");
}
