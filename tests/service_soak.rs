//! Longevity soak: a 10k-event service run plus a pooled gossip
//! substrate, with the pool's new ownership stats pinning "no
//! unbounded growth".
//!
//! A deployed trust service is long-lived by definition, so the things
//! that are harmless in a 30-round batch run — a leaked buffer per
//! round, an ever-growing staging vector — are exactly what kills it.
//! This suite drives an order of magnitude more events than the unit
//! tests and asserts the steady-state invariants: staged events drain
//! at every commit, and the message pool's high-water mark plateaus
//! instead of tracking run length.

use tsn::prelude::*;
use tsn::protocol::{GossipConfig, GossipNetwork};
use tsn::simnet::{latency::ConstantLatency, Network, NetworkConfig, NoLoss};
use tsn_graph::generators;

/// 10k+ events through one service instance: staging stays bounded,
/// the sample series stays exactly one entry per epoch, and counters
/// reconcile.
#[test]
fn service_soaks_past_ten_thousand_events() {
    let nodes = 400;
    let driver = ServiceDriver::new(DriverConfig {
        nodes,
        arrival_rate: 3.0,
        disclosure_rate: 0.3,
        query_rate: 0.3,
        malicious_fraction: 0.15,
        seed: 99,
        membership: None,
    })
    .expect("valid workload");
    let mut service = TrustService::new(ServiceConfig {
        nodes,
        epoch: SimDuration::from_secs(60),
        ..ServiceConfig::default()
    })
    .expect("valid config");

    let epochs = 12;
    let mut max_staged = 0usize;
    for _ in 0..epochs {
        let ops = driver.ops_for_epoch(&service, service.epoch_index());
        service.apply_all(&ops).expect("clean apply");
        max_staged = max_staged.max(service.staged_len());
        service.finish_epoch().expect("clean finish");
        assert_eq!(service.staged_len(), 0, "every commit must drain staging");
    }

    let stats = service.stats();
    assert!(
        stats.ingested > 10_000,
        "soak must exceed 10k events, got {}",
        stats.ingested
    );
    assert_eq!(service.samples().len(), epochs as usize);
    // Staging is bounded by one epoch's traffic, not by run length.
    let per_epoch = stats.ingested as usize / epochs as usize;
    assert!(
        max_staged < per_epoch * 2,
        "staging peak {max_staged} should stay near one epoch's {per_epoch}"
    );
    // The committed totals reconcile with the per-epoch series.
    let committed: u64 = service.samples().iter().map(|s| s.committed).sum();
    assert_eq!(committed, stats.ingested);
    // Scores stay inside the unit interval over the whole population.
    assert!(service
        .scores()
        .iter()
        .all(|s| (0.0..=1.0).contains(s) && s.is_finite()));
}

/// The pooled gossip substrate under soak: after a warm-up the pool's
/// high-water mark must plateau — ten times more rounds, zero growth —
/// and every buffer must come home when the wire drains.
#[test]
fn gossip_pool_high_water_plateaus_under_soak() {
    let n = 60;
    let mut rng = SimRng::seed_from_u64(17);
    let graph = generators::watts_strogatz(n, 6, 0.1, &mut rng).expect("valid graph");
    let config = NetworkConfig {
        latency: Box::new(ConstantLatency(SimDuration::from_millis(10))),
        loss: Box::new(NoLoss),
    };
    let mut network = Network::new(config, rng.fork(1));
    for _ in 0..n {
        network.add_node();
    }
    let mut gossip = GossipNetwork::new(
        graph,
        network,
        GossipConfig {
            subjects: n,
            ..GossipConfig::default()
        },
        rng.fork(2),
    );
    for _ in 0..n * 10 {
        let observer = NodeId(rng.gen_range(0..n as u32));
        let subject = rng.gen_range(0..n);
        gossip.observe(observer, subject, 0.7);
    }

    // Warm-up: let the pool reach its working set.
    gossip.run(10);
    let warm_high_water = gossip.network_mut().pool().high_water_mark();
    assert!(warm_high_water > 0, "gossip must actually use the pool");

    // Soak: 10x the warm-up. A leak (acquire without release) or a
    // freelist bypass (fresh allocations in steady state) would push
    // the high-water mark up with run length.
    gossip.run(100);
    let soaked = gossip.network_mut().pool();
    assert_eq!(
        soaked.high_water_mark(),
        warm_high_water,
        "pool high-water mark must plateau after warm-up"
    );
    // Steady-state rounds are allocation-free: the freelist serves
    // every acquire.
    let fresh_before = gossip.network_mut().pool().fresh_allocations();
    gossip.run(10);
    assert_eq!(
        gossip.network_mut().pool().fresh_allocations(),
        fresh_before,
        "steady-state rounds must not allocate fresh buffers"
    );

    // Ownership reconciles: whatever the pool still counts as "out"
    // must be sitting on the wire (or parked per node), not leaked.
    let in_flight = gossip.network_mut().in_flight_len();
    let outstanding = gossip.network_mut().pool().outstanding();
    assert!(
        outstanding <= in_flight + n,
        "outstanding {outstanding} must be bounded by in-flight {in_flight} + one per node"
    );
}

/// A journaling host under soak: segment GC behind the checkpoint ring
/// keeps the on-disk high-water mark bounded by the checkpoint cadence
/// — total bytes ever written keep climbing, the live footprint
/// plateaus.
#[test]
fn journaled_host_disk_high_water_plateaus_under_soak() {
    let nodes = 120;
    let driver = ServiceDriver::new(DriverConfig {
        nodes,
        arrival_rate: 2.0,
        disclosure_rate: 0.3,
        query_rate: 0.3,
        malicious_fraction: 0.15,
        seed: 99,
        membership: None,
    })
    .expect("valid workload");
    let mut host = ServiceHost::new(HostConfig {
        service: ServiceConfig {
            nodes,
            epoch: SimDuration::from_secs(60),
            ..ServiceConfig::default()
        },
        journal: true,
        checkpoint_every_epochs: 1,
        retain_checkpoints: 2,
        recovery_grace: SimDuration::ZERO,
        journal_segment_bytes: 1024, // small: several seals per epoch
    })
    .expect("valid host");

    let epochs = 16u64;
    let warmup = 4u64;
    let policy = RetryPolicy::default();
    let mut warm_high_water = 0usize;
    let mut high_water = 0usize;
    for epoch in 0..epochs {
        driver
            .drive_host(&mut host, 1, &policy)
            .expect("clean epoch");
        high_water = high_water.max(host.journal().byte_len());
        if epoch < warmup {
            warm_high_water = high_water;
        }
    }

    assert!(
        host.stats().journal_segments_gced > 0,
        "the checkpoint ring must have unpinned segments for GC"
    );
    // The live footprint after 16 epochs is no worse than shortly after
    // start: GC tracks the ring, so four times the uptime buys zero
    // growth (one segment of slack for boundary jitter).
    assert!(
        high_water <= warm_high_water + 1024,
        "live journal bytes must plateau: warm high-water {warm_high_water}, \
         final high-water {high_water}"
    );
    // Meanwhile the journal kept writing the whole time: the total ever
    // written dwarfs what is live on disk.
    let written = host.journal().bytes_written();
    assert!(
        written >= 3 * high_water as u64,
        "total bytes written ({written}) should dwarf the live high-water ({high_water})"
    );
}
