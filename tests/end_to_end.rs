//! Cross-crate integration: the full pipeline from substrates to trust.

use tsn::core::runner::ScenarioBuilder;
use tsn::core::{Optimizer, TrustMetric};
use tsn::graph::{generators, metrics};
use tsn::reputation::{testbed::run_testbed, MechanismKind, PopulationConfig, TestbedConfig};
use tsn::simnet::{SimRng, SimTime, Simulation};

fn small(seed: u64) -> ScenarioBuilder {
    ScenarioBuilder::small().seed(seed)
}

#[test]
fn simulator_graph_and_scenario_compose() {
    // The simulator drives events; the graph provides structure; the
    // scenario uses both (indirectly). Smoke the full chain.
    let mut sim = Simulation::new(SimRng::seed_from_u64(1));
    let a = sim.add_node();
    let b = sim.add_node();
    sim.schedule_at(SimTime::from_millis(1), move |s| {
        s.network_mut().send(a, b, "hello".into());
    });
    let report = sim.run_to_idle();
    assert_eq!(report.messages_delivered, 1);

    let mut rng = SimRng::seed_from_u64(2);
    let g = generators::barabasi_albert(200, 3, &mut rng).unwrap();
    assert!(g.is_connected());
    assert!(metrics::average_path_length(&g, 30, &mut rng).unwrap() < 4.0);

    let outcome = small(3).run().unwrap();
    assert!(outcome.interactions > 0);
    assert!(outcome.messages > outcome.interactions);
}

#[test]
fn scenario_outcome_is_fully_reproducible() {
    let a = small(11).run().unwrap();
    let b = small(11).run().unwrap();
    assert_eq!(a.global_trust, b.global_trust);
    assert_eq!(a.per_user_trust, b.per_user_trust);
    assert_eq!(a.user_breaches, b.user_breaches);
    assert_eq!(a.system_breaches, b.system_breaches);
    assert_eq!(a.samples.len(), b.samples.len());
    for (sa, sb) in a.samples.iter().zip(&b.samples) {
        assert_eq!(sa, sb);
    }
}

#[test]
fn testbed_and_scenario_agree_on_mechanism_quality() {
    // Both drivers should agree that reputation helps under attack.
    let testbed = run_testbed(TestbedConfig {
        nodes: 60,
        rounds: 20,
        population: PopulationConfig::with_malicious(0.3),
        mechanism: MechanismKind::Beta,
        seed: 4,
        ..Default::default()
    })
    .unwrap();
    assert!(testbed.power.consistency > 0.6);

    let scenario = small(4)
        .mechanism(MechanismKind::Beta)
        .malicious_fraction(0.3)
        .run()
        .unwrap();
    assert!(scenario.facets.reputation > 0.5);
}

#[test]
fn optimizer_finds_trust_improving_settings() {
    let base = ScenarioBuilder::new()
        .nodes(24)
        .rounds(6)
        .graph(4, 0.1)
        .build()
        .unwrap();
    let mut optimizer = Optimizer::new(base.clone(), TrustMetric::default()).unwrap();
    optimizer.seeds_per_point = 1;
    let sweep = optimizer.sweep();
    let best = optimizer.best(&sweep, None);
    // The optimum must be at least as good as the base point itself.
    let base_point = optimizer.evaluate(
        base.mechanism,
        base.disclosure_level,
        base.policy_profile,
        base.selection,
    );
    assert!(best.best.trust >= base_point.trust - 1e-9);
}

#[test]
fn facade_prelude_reexports_work() {
    use tsn::prelude::*;
    let outcome = ScenarioBuilder::small().run().unwrap();
    let metric = TrustMetric::default();
    let recomputed = metric.trust(&outcome.facets);
    assert!((recomputed - outcome.global_trust).abs() < 1e-12);
}

#[test]
fn churn_module_composes_with_lifecycle() {
    use tsn::simnet::{ChurnConfig, ChurnEvent, ChurnProcess, NodeLifecycle, SimDuration};
    let config = ChurnConfig {
        mean_session: SimDuration::from_secs(100),
        mean_downtime: SimDuration::from_secs(50),
        whitewash_probability: 1.0,
        crash_fraction: 0.0,
    };
    let mut process = ChurnProcess::new(config, SimRng::seed_from_u64(5));
    let mut lifecycle = NodeLifecycle::new();
    let mut next_id = 10u32;
    lifecycle.register(tsn::simnet::NodeId(0));

    let (_, departure) = process.next_departure(tsn::simnet::NodeId(0));
    lifecycle.apply(departure);
    assert!(!lifecycle.is_online(tsn::simnet::NodeId(0)));

    let (_, ret) = process.next_return(tsn::simnet::NodeId(0), || {
        let id = tsn::simnet::NodeId(next_id);
        next_id += 1;
        id
    });
    lifecycle.apply(ret);
    match ret {
        ChurnEvent::Whitewash(old, new) => {
            assert_eq!(lifecycle.root_identity(new), old);
            assert!(lifecycle.is_online(new));
        }
        other => panic!("whitewash_probability = 1.0 must whitewash, got {other:?}"),
    }
}
