//! Online-service contracts: streaming equals batch, and checkpoints
//! are invisible.
//!
//! Two equivalences pin the service's determinism story:
//!
//! 1. **Streaming == batch.** Feeding a workload through the service
//!    one op at a time (arrivals interleaved with queries on the sim
//!    clock) yields trust scores bit-identical to applying the same
//!    events epoch-wise to a bare mechanism — the service's staging
//!    and delta commits change *when* work happens, never *what* is
//!    computed.
//! 2. **Checkpoint == uninterrupted.** Snapshotting at any point —
//!    between epochs, mid-epoch with staged events, mid
//!    partition-window — then restoring and continuing produces the
//!    same outcome (scores *and* the per-epoch sample series) as a run
//!    that never checkpointed.

use tsn::prelude::*;
use tsn::reputation::{build_mechanism, DisclosurePolicy, FeedbackReport};
use tsn::service::ServiceEvent;

fn workload(nodes: usize, seed: u64) -> (ServiceDriver, TrustService) {
    let driver = ServiceDriver::new(DriverConfig {
        nodes,
        arrival_rate: 3.0,
        disclosure_rate: 0.25,
        query_rate: 0.4,
        malicious_fraction: 0.2,
        seed,
        membership: None,
    })
    .expect("valid workload");
    let service = TrustService::new(ServiceConfig {
        nodes,
        epoch: SimDuration::from_secs(60),
        ..ServiceConfig::default()
    })
    .expect("valid config");
    (driver, service)
}

/// Streaming through the service == epoch-wise batch over the bare
/// mechanism, bit for bit.
#[test]
fn streaming_equals_batch_bit_identically() {
    let nodes = 300;
    let (driver, mut service) = workload(nodes, 7);
    let epochs = 6;

    // The batch side: the same mechanism fed the same events in the
    // same order, one record_batch + refresh per epoch — the exact
    // computation the service performs internally, minus the service.
    let mut mechanism = build_mechanism(service.config().mechanism, nodes);
    let policy = DisclosurePolicy::ladder(service.config().disclosure_level);
    for epoch in 0..epochs {
        let ops = driver.ops_for_epoch(&service, epoch);
        let views: Vec<_> = ops
            .iter()
            .filter_map(|op| match *op {
                ServiceOp::Ingest(ServiceEvent::Interaction {
                    rater,
                    ratee,
                    outcome,
                    at,
                }) => Some(policy.view(&FeedbackReport {
                    rater,
                    ratee,
                    outcome,
                    topic: None,
                    at,
                })),
                _ => None,
            })
            .collect();
        mechanism.record_batch(&views);
        mechanism.refresh();
    }

    // The streaming side: every op individually, queries interleaved.
    driver.drive(&mut service, epochs).expect("clean drive");
    assert!(
        service.stats().queries > 0,
        "workload must exercise queries"
    );

    let streamed = service.scores();
    let batch = mechanism.scores();
    assert_eq!(streamed.len(), batch.len());
    for (i, (s, b)) in streamed.iter().zip(&batch).enumerate() {
        assert_eq!(
            s.to_bits(),
            b.to_bits(),
            "node {i}: streamed {s} != batch {b}"
        );
    }
}

/// Restore-and-continue == never-checkpointed, across several cut
/// points (between epochs and mid-epoch with staged events).
#[test]
fn checkpoint_restore_continue_equals_uninterrupted() {
    let nodes = 200;
    let total_epochs = 6;

    let (driver, mut uninterrupted) = workload(nodes, 11);
    driver
        .drive(&mut uninterrupted, total_epochs)
        .expect("clean drive");

    for cut_epochs in [1, 3, 5] {
        let (_, mut service) = workload(nodes, 11);
        driver.drive(&mut service, cut_epochs).expect("clean drive");
        // Stage some of the next epoch before cutting, so the
        // checkpoint carries uncommitted events.
        let pending = driver.ops_for_epoch(&service, service.epoch_index());
        let mid = pending.len() / 2;
        for op in &pending[..mid] {
            service.apply(op).expect("clean apply");
        }
        assert!(service.staged_len() > 0, "cut must land mid-epoch");

        let bytes = service.checkpoint().expect("checkpointable");
        let mut resumed = TrustService::restore(&bytes).expect("valid checkpoint");
        assert_eq!(resumed.staged_len(), service.staged_len());

        // Finish the interrupted epoch on the restored instance, then
        // run out the remaining epochs.
        let now = resumed.now();
        for op in &pending[mid..] {
            if op.at() >= now {
                resumed.apply(op).expect("clean apply");
            }
        }
        resumed.finish_epoch().expect("clean finish");
        driver
            .drive(&mut resumed, total_epochs - cut_epochs - 1)
            .expect("clean drive");

        let a = uninterrupted.scores();
        let b = resumed.scores();
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "cut at {cut_epochs}: node {i} diverged ({x} vs {y})"
            );
        }
        // The whole per-epoch series must match, not just the endpoint.
        assert_eq!(
            uninterrupted.samples(),
            resumed.samples(),
            "cut at {cut_epochs}: sample series diverged"
        );
        assert_eq!(uninterrupted.stats().ingested, resumed.stats().ingested);
    }
}

/// A checkpoint taken while a partition window is open restores the
/// gating exactly: the same events are rejected after restore as in an
/// uninterrupted run.
#[test]
fn checkpoint_mid_partition_window_restores_gating() {
    let nodes = 100;
    // Epochs are 60s; the window splits epochs 2 and 3 into two groups.
    let partitions = vec![PartitionWindow::full_split(
        SimTime::from_secs(120),
        SimTime::from_secs(240),
        2,
    )];
    let config = ServiceConfig {
        nodes,
        epoch: SimDuration::from_secs(60),
        partitions: partitions.clone(),
        ..ServiceConfig::default()
    };
    let driver = ServiceDriver::new(DriverConfig {
        nodes,
        arrival_rate: 3.0,
        seed: 23,
        ..DriverConfig::default()
    })
    .expect("valid workload");

    let mut uninterrupted = TrustService::new(config.clone()).expect("valid config");
    driver.drive(&mut uninterrupted, 5).expect("clean drive");
    assert!(
        uninterrupted.stats().rejected > 0,
        "the window must actually reject cross-group traffic"
    );

    // Cut *inside* the window: after epoch 2 committed, the clock sits
    // at 180s with the split still active until 240s.
    let mut service = TrustService::new(config).expect("valid config");
    driver.drive(&mut service, 3).expect("clean drive");
    let at = service.now();
    assert!(at >= partitions[0].start && at < partitions[0].end);

    let bytes = service.checkpoint().expect("checkpointable");
    let mut resumed = TrustService::restore(&bytes).expect("valid checkpoint");
    assert_eq!(resumed.config().partitions, partitions);
    driver.drive(&mut resumed, 2).expect("clean drive");

    assert_eq!(uninterrupted.stats().rejected, resumed.stats().rejected);
    assert_eq!(uninterrupted.samples(), resumed.samples());
    let a = uninterrupted.scores();
    let b = resumed.scores();
    assert!(
        a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "mid-window restore diverged"
    );
}

/// The checkpoint works for every mechanism that supports snapshots,
/// and fails with a clear error for the ones that don't.
#[test]
fn checkpoint_support_matrix() {
    for kind in MechanismKind::ALL {
        let mut service = TrustService::new(ServiceConfig {
            nodes: 20,
            mechanism: kind,
            epoch: SimDuration::from_secs(60),
            ..ServiceConfig::default()
        })
        .expect("valid config");
        let driver = ServiceDriver::new(DriverConfig {
            nodes: 20,
            seed: 5,
            ..DriverConfig::default()
        })
        .expect("valid workload");
        driver.drive(&mut service, 2).expect("clean drive");
        match service.checkpoint() {
            Ok(bytes) => {
                let resumed = TrustService::restore(&bytes).expect("valid checkpoint");
                let a = service.scores();
                let b = resumed.scores();
                assert!(
                    a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{kind}: restore changed scores"
                );
            }
            Err(e) => assert!(
                e.contains("does not support"),
                "{kind}: unexpected error {e}"
            ),
        }
    }
}

/// Queries never see uncommitted events, and staleness is bounded by
/// one epoch length once the first epoch has committed.
#[test]
fn staleness_is_bounded_by_one_epoch() {
    let (driver, mut service) = workload(150, 3);
    driver.drive(&mut service, 4).expect("clean drive");
    let epoch_us = service.config().epoch.as_micros();
    // Probe a grid of query times across the next two epochs.
    for step in 0..20u64 {
        let at = service.now() + SimDuration::from_micros(epoch_us / 10);
        let q = service
            .query_trust(NodeId(step as u32), at)
            .expect("valid query");
        assert!(
            q.staleness.as_micros() < epoch_us,
            "staleness {} exceeds the epoch bound {epoch_us}",
            q.staleness.as_micros()
        );
        assert_eq!(
            q.as_of.as_micros() % epoch_us,
            0,
            "answers reflect epoch boundaries only"
        );
    }
}
