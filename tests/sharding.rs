//! Determinism contract of the sharded round engine (DESIGN.md §10).
//!
//! The sharded engine's outcome must be a function of `(config, seed)`
//! only — never of the shard count, the worker count, or scheduling.
//! These tests pin:
//!
//! * 1, 2 and 8 shards produce bit-identical outcomes;
//! * `shards = 1` (the default) keeps the serial engine, whose outputs
//!   the golden fixtures in `tests/equivalence.rs` pin;
//! * auto mode (`shards = 0`) picks the engine by node count alone;
//! * sweeps over sharded cells stay deterministic under the parallel
//!   sweep runner.

use tsn_core::json::format_f64;
use tsn_core::runner::{ScenarioBuilder, SweepGrid, SweepRunner};
use tsn_core::scenario::{Scenario, ScenarioOutcome, SHARD_AUTO_NODES};
use tsn_reputation::{MechanismKind, PopulationConfig, SelectionPolicy};

/// Bit-exact text form of every float an outcome carries (shortest
/// round-trip form, so equality here is bit equality).
fn fingerprint(o: &ScenarioOutcome) -> String {
    let mut s = String::new();
    let vec = |vs: &[f64]| {
        vs.iter()
            .map(|&v| format_f64(v))
            .collect::<Vec<_>>()
            .join(",")
    };
    s.push_str(&format!(
        "facets {} {} {} trust {}\n",
        format_f64(o.facets.privacy),
        format_f64(o.facets.reputation),
        format_f64(o.facets.satisfaction),
        format_f64(o.global_trust),
    ));
    s.push_str(&format!(
        "counts interactions={} messages={} user_breaches={} system_breaches={} whitewashes={}\n",
        o.interactions, o.messages, o.user_breaches, o.system_breaches, o.whitewashes
    ));
    s.push_str(&format!("per_user_trust {}\n", vec(&o.per_user_trust)));
    s.push_str(&format!(
        "per_user_satisfaction {}\n",
        vec(&o.per_user_satisfaction)
    ));
    s.push_str(&format!("per_user_respect {}\n", vec(&o.per_user_respect)));
    for r in &o.samples {
        s.push_str(&format!(
            "round {} {} {} {} {} {} {} {} {} {}\n",
            r.round,
            format_f64(r.mean_satisfaction),
            format_f64(r.mean_trust),
            format_f64(r.respect_rate),
            format_f64(r.consistency),
            format_f64(r.mean_willingness),
            format_f64(r.success_rate),
            r.reports_filed,
            format_f64(r.availability),
            format_f64(r.partition_health),
        ));
    }
    s
}

/// A small but adversarial base: malicious raters (ballot stuffing),
/// traitors (clock betrayal), coin-flip churn and adaptive disclosure —
/// every code path the shard phase defers to the merge barrier.
fn base() -> ScenarioBuilder {
    ScenarioBuilder::small()
        .seed(7101)
        .population(PopulationConfig {
            malicious: 0.2,
            traitor: 0.1,
            traitor_switch_after: 3,
            ..Default::default()
        })
        .churn(0.2)
        .adaptive_disclosure(true)
}

#[test]
fn one_two_and_eight_shards_are_bit_identical() {
    let reference = fingerprint(
        &base()
            .build_scenario()
            .expect("valid config")
            .run_sharded(1),
    );
    for shards in [2usize, 3, 8] {
        let outcome = base()
            .build_scenario()
            .expect("valid config")
            .run_sharded(shards);
        assert_eq!(
            reference,
            fingerprint(&outcome),
            "{shards} shards diverged from 1 shard"
        );
    }
}

#[test]
fn shard_knob_routes_to_the_sharded_engine() {
    let via_knob = base().shards(4).run().expect("valid config");
    let forced = base()
        .build_scenario()
        .expect("valid config")
        .run_sharded(4);
    assert_eq!(fingerprint(&via_knob), fingerprint(&forced));
}

#[test]
fn default_shards_is_the_serial_engine() {
    // shards = 1 (the default) must stay the serial engine — the one the
    // golden fixtures pin — and auto mode below the threshold likewise.
    let serial = base().run().expect("valid config");
    let auto = base().shards(0).run().expect("valid config");
    assert!(ScenarioBuilder::small().build().expect("valid").nodes < SHARD_AUTO_NODES);
    assert_eq!(fingerprint(&serial), fingerprint(&auto));
    // The engines genuinely differ (synchronous-model semantics): the
    // sharded run is not byte-equal to serial on this adversarial base.
    let sharded = base().shards(2).run().expect("valid config");
    assert_ne!(
        fingerprint(&serial),
        fingerprint(&sharded),
        "serial and sharded semantics are expected to differ"
    );
}

#[test]
fn sharded_engine_is_deterministic_with_dynamics() {
    let build = || {
        ScenarioBuilder::small()
            .seed(7102)
            .malicious_fraction(0.25)
            .whitewash_attack()
            .build_scenario()
            .expect("valid config")
    };
    let a = build().run_sharded(1);
    let b = build().run_sharded(4);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.whitewashes > 0, "the whitewash preset actually churns");
}

#[test]
fn sharded_runs_are_reproducible() {
    let a = base().shards(3).run().expect("valid config");
    let b = base().shards(3).run().expect("valid config");
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn sharded_outcome_is_structurally_sound() {
    let o = base().shards(4).run().expect("valid config");
    assert!(o.facets.validate().is_ok());
    assert!((0.0..=1.0).contains(&o.global_trust));
    assert!(o.interactions > 0);
    assert_eq!(o.samples.len(), 10);
    assert!(o.per_user_trust.iter().all(|t| (0.0..=1.0).contains(t)));
}

#[test]
fn sweep_over_sharded_cells_is_runner_invariant() {
    // The sweep interplay: cells configured for the sharded engine must
    // produce the same report under the serial and the parallel sweep
    // runner (cells are deterministic, so the only difference threads
    // could make is a bug).
    let grid = SweepGrid::over(base().nodes(32).rounds(4).graph(4, 0.1).shards(2))
        .mechanisms([MechanismKind::Beta, MechanismKind::EigenTrust])
        .seeds([1, 2]);
    let serial = SweepRunner::serial().run(&grid).expect("valid grid");
    let parallel = SweepRunner::with_threads(4).run(&grid).expect("valid grid");
    assert_eq!(serial, parallel);
}

#[test]
fn forced_sharding_clamps_degenerate_counts() {
    // More shards than nodes, or zero, must not panic or change results.
    let tiny = ScenarioBuilder::small().seed(7103);
    let a = tiny.clone().build_scenario().expect("valid").run_sharded(1);
    let b = tiny
        .clone()
        .build_scenario()
        .expect("valid")
        .run_sharded(10_000);
    let c = tiny.build_scenario().expect("valid").run_sharded(0);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(fingerprint(&a), fingerprint(&c));
}

#[test]
fn never_selected_traitor_still_turns_in_a_scenario() {
    // End-to-end regression for the stuck-traitor fix: with Best
    // selection consumers converge on top-scored providers, so a
    // traitor may never serve — only the time deadline (defaulted to
    // `switch_after` rounds by the scenario) can turn it. Compare the
    // same seed with the deadline inside vs far beyond the horizon:
    // once it passes, 30% of providers serve at adversarial quality and
    // lie as raters, so late-round success must drop.
    let run = |switch_after: u64| {
        ScenarioBuilder::small()
            .seed(7104)
            .population(PopulationConfig {
                traitor: 0.3,
                traitor_switch_after: switch_after,
                ..Default::default()
            })
            .selection(SelectionPolicy::Best)
            .rounds(8)
            .run()
            .expect("valid config")
    };
    let late_success = |o: &ScenarioOutcome| {
        o.samples[4..].iter().map(|s| s.success_rate).sum::<f64>() / (o.samples.len() - 4) as f64
    };
    let betrayed = run(2); // deadline at round 2
    let loyal = run(1_000); // deadline beyond the run
    assert!(
        late_success(&betrayed) < late_success(&loyal),
        "betrayal must show up after the deadline: {} vs {}",
        late_success(&betrayed),
        late_success(&loyal)
    );
}

#[test]
fn mega_preset_is_valid_and_auto_sharded() {
    let config = ScenarioBuilder::mega(SHARD_AUTO_NODES)
        .build()
        .expect("mega preset is valid");
    assert_eq!(config.shards, 0, "auto engine selection");
    assert!(
        config.ledger_raw_record_cap.is_some(),
        "bounded audit trail"
    );
    // Below the threshold auto stays serial; at the threshold the engine
    // flips — pin the boundary with a scenario probe.
    let probe = Scenario::new(config).expect("valid");
    drop(probe);
}

/// The online service's epoch-commit sharding obeys the same contract
/// as the batch engine: `commit_shards` is an execution knob, never an
/// outcome knob. 1, 2 and 8 shards produce bit-identical scores,
/// samples and stats for the same driven workload — partition windows
/// and disclosure dynamics included.
#[test]
fn service_epoch_commits_are_shard_count_invariant() {
    use tsn::prelude::*;

    let driver = ServiceDriver::new(DriverConfig {
        nodes: 60,
        arrival_rate: 2.0,
        disclosure_rate: 0.25,
        query_rate: 0.4,
        malicious_fraction: 0.2,
        seed: 7105,
        membership: None,
    })
    .expect("valid driver");
    let run = |shards: usize| {
        let mut service = TrustService::new(ServiceConfig {
            nodes: 60,
            epoch: SimDuration::from_secs(60),
            partitions: vec![PartitionWindow::full_split(
                SimTime::from_secs(70),
                SimTime::from_secs(110),
                2,
            )],
            commit_shards: shards,
            ..ServiceConfig::default()
        })
        .expect("valid service");
        driver.drive(&mut service, 3).expect("clean run");
        (
            service
                .scores()
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<u64>>(),
            service.samples().to_vec(),
            service.stats(),
        )
    };
    let reference = run(1);
    for shards in [2usize, 8] {
        assert_eq!(
            reference,
            run(shards),
            "{shards} commit shards diverged from the serial commit"
        );
    }
}
