//! Bit-identical equivalence fixtures for the optimized hot paths.
//!
//! The scenario loop, the EigenTrust/PowerTrust local-trust storage and
//! the disclosure ledger were rewritten for performance (scratch
//! buffers, incremental CSR, running counters). Those rewrites must not
//! change a single bit of any outcome: this suite pins a grid of
//! (config, seed) fixtures to golden files capturing every float of the
//! [`ScenarioOutcome`] (shortest round-trip form, so the comparison is
//! exact) plus a full [`SweepReport`] CSV.
//!
//! The goldens were generated from the pre-refactor code. To regenerate
//! after an *intentional* semantic change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test equivalence
//! ```
//!
//! and justify the diff in the PR.

use tsn_core::config::PolicyProfile;
use tsn_core::json::format_f64;
use tsn_core::runner::{DisclosureLevel, ScenarioBuilder, SweepGrid, SweepRunner};
use tsn_core::scenario::{Scenario, ScenarioOutcome};
use tsn_graph::generators;
use tsn_protocol::{GossipConfig, GossipNetwork};
use tsn_reputation::{AnonymizationConfig, MechanismKind, SelectionPolicy};
use tsn_simnet::{
    latency::ConstantLatency, BernoulliLoss, Network, NetworkConfig, NoLoss, NodeId, SimDuration,
    SimRng,
};

use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Serializes every field of an outcome in bit-exact text form.
/// `format_f64` emits the shortest string that round-trips, so two
/// outcomes serialize identically iff every float is bit-identical.
fn fingerprint(o: &ScenarioOutcome) -> String {
    let mut s = String::new();
    let f = |v: f64| format_f64(v);
    let vec = |vs: &[f64]| {
        vs.iter()
            .map(|&v| format_f64(v))
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = writeln!(
        s,
        "facets privacy={} reputation={} satisfaction={}",
        f(o.facets.privacy),
        f(o.facets.reputation),
        f(o.facets.satisfaction)
    );
    let _ = writeln!(s, "global_trust {}", f(o.global_trust));
    let _ = writeln!(s, "per_user_trust {}", vec(&o.per_user_trust));
    let _ = writeln!(s, "per_user_satisfaction {}", vec(&o.per_user_satisfaction));
    let _ = writeln!(s, "per_user_respect {}", vec(&o.per_user_respect));
    let _ = writeln!(
        s,
        "power consistency={} rmse={} reliability={} efficiency={} iterations={} overhead={}",
        f(o.power.consistency),
        f(o.power.rmse),
        f(o.power.reliability),
        f(o.power.efficiency),
        o.power.iterations,
        o.power.overhead_per_report
    );
    let _ = writeln!(
        s,
        "satisfaction mean={} min={} jain={} gini={} population={}",
        f(o.satisfaction.mean),
        f(o.satisfaction.min),
        f(o.satisfaction.jain_index),
        f(o.satisfaction.gini),
        o.satisfaction.population
    );
    let _ = writeln!(
        s,
        "ledger respect_rate={} user_breaches={} system_breaches={}",
        f(o.respect_rate),
        o.user_breaches,
        o.system_breaches
    );
    let _ = writeln!(
        s,
        "misc oecd={} willingness={} denial={} interactions={} messages={}",
        f(o.oecd_score),
        f(o.mean_willingness),
        f(o.denial_rate),
        o.interactions,
        o.messages
    );
    for r in &o.samples {
        let _ = writeln!(
            s,
            "round {} sat={} trust={} respect={} consistency={} willingness={} success={} reports={}",
            r.round,
            f(r.mean_satisfaction),
            f(r.mean_trust),
            f(r.respect_rate),
            f(r.consistency),
            f(r.mean_willingness),
            f(r.success_rate),
            r.reports_filed
        );
    }
    s
}

/// The pinned fixture grid: every mechanism, several disclosure levels,
/// every selection-policy variant, churn, adaptation and anonymization.
fn fixtures() -> Vec<(&'static str, ScenarioBuilder)> {
    vec![
        ("eigentrust_full", ScenarioBuilder::small().seed(101)),
        (
            "eigentrust_adaptive_churn",
            ScenarioBuilder::small()
                .seed(102)
                .disclosure(DisclosureLevel::Timestamped)
                .adaptive_disclosure(true)
                .churn(0.3)
                .malicious_fraction(0.3),
        ),
        (
            "powertrust_mixed",
            ScenarioBuilder::small()
                .seed(103)
                .mechanism(MechanismKind::PowerTrust)
                .disclosure(DisclosureLevel::Topical)
                .malicious_fraction(0.3),
        ),
        (
            "beta_minimal_random",
            ScenarioBuilder::small()
                .seed(104)
                .mechanism(MechanismKind::Beta)
                .disclosure(DisclosureLevel::Minimal)
                .selection(SelectionPolicy::Random),
        ),
        (
            "trustme_best_strict",
            ScenarioBuilder::small()
                .seed(105)
                .mechanism(MechanismKind::TrustMe)
                .selection(SelectionPolicy::Best)
                .policy_profile(PolicyProfile::Strict),
        ),
        (
            "none_threshold",
            ScenarioBuilder::small()
                .seed(106)
                .mechanism(MechanismKind::None)
                .selection(SelectionPolicy::Threshold { threshold: 0.5 }),
        ),
        (
            "eigentrust_anonymized",
            ScenarioBuilder::small()
                .seed(107)
                .anonymization(AnonymizationConfig::default()),
        ),
    ]
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}; run with GOLDEN_REGEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name}: outcome is not bit-identical to the pre-refactor golden"
    );
}

#[test]
fn scenario_outcomes_match_pre_refactor_goldens() {
    for (name, builder) in fixtures() {
        let outcome = builder.run().expect("fixture config is valid");
        check_golden(name, &fingerprint(&outcome));
    }
}

#[test]
fn sweep_report_matches_pre_refactor_golden() {
    let grid = SweepGrid::over(ScenarioBuilder::small().nodes(24).rounds(4).graph(4, 0.1))
        .mechanisms([
            MechanismKind::None,
            MechanismKind::Beta,
            MechanismKind::EigenTrust,
        ])
        .disclosures([DisclosureLevel::Minimal, DisclosureLevel::Full])
        .seeds([1, 2]);
    let report = SweepRunner::parallel().run(&grid).expect("valid grid");
    check_golden("sweep_report", &report.to_csv());
}

#[test]
fn repeated_runs_are_bit_identical() {
    for (name, builder) in fixtures() {
        let a = builder.clone().run().expect("valid");
        let b = builder.run().expect("valid");
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{name}: two runs of the same config diverged"
        );
    }
}

/// A deterministic gossip instance for the message-path goldens:
/// 100 nodes on a Watts-Strogatz overlay, one observation per node.
fn gossip_instance(n: usize, loss: f64, seed: u64) -> GossipNetwork {
    let mut rng = SimRng::seed_from_u64(seed);
    let graph = generators::watts_strogatz(n, 6, 0.1, &mut rng).expect("valid overlay");
    let config = NetworkConfig {
        latency: Box::new(ConstantLatency(SimDuration::from_millis(10))),
        loss: if loss > 0.0 {
            Box::new(BernoulliLoss::new(loss))
        } else {
            Box::new(NoLoss)
        },
    };
    let mut network = Network::new(config, rng.fork(1));
    for _ in 0..n {
        network.add_node();
    }
    let mut gossip = GossipNetwork::new(
        graph,
        network,
        GossipConfig {
            subjects: n,
            ..Default::default()
        },
        rng.fork(2),
    );
    let mut obs_rng = SimRng::seed_from_u64(seed ^ 0xA5A5);
    for _ in 0..n * 10 {
        let observer = NodeId(obs_rng.gen_range(0..n as u32));
        let subject = obs_rng.gen_range(0..n);
        let value = if subject.is_multiple_of(2) { 0.9 } else { 0.2 };
        gossip.observe(observer, subject, value);
    }
    gossip
}

/// Bit-exact text form of a gossip run: report errors, wire costs and
/// the conserved push-sum mass, plus a sample of local estimates.
fn gossip_fingerprint(gossip: &GossipNetwork, n: usize) -> String {
    let report = gossip.report();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "report mean_error={} max_error={}",
        format_f64(report.mean_error),
        format_f64(report.max_error)
    );
    let _ = writeln!(
        s,
        "costs messages={} bytes={} rounds={}",
        report.costs.messages, report.costs.bytes, report.costs.rounds
    );
    let _ = writeln!(s, "total_weight {}", format_f64(gossip.total_weight()));
    for i in (0..n).step_by(17) {
        let _ = writeln!(
            s,
            "estimate node={i} s0={} s1={}",
            format_f64(gossip.estimate(NodeId::from_index(i), 0)),
            format_f64(gossip.estimate(NodeId::from_index(i), 1)),
        );
    }
    s
}

#[test]
fn gossip_outcomes_match_pre_refactor_goldens() {
    let n = 100;
    for (name, loss) in [("gossip_clean", 0.0), ("gossip_lossy", 0.3)] {
        let mut gossip = gossip_instance(n, loss, 20100);
        gossip.run(20);
        check_golden(name, &gossip_fingerprint(&gossip, n));
    }
}

#[test]
fn gossip_steady_state_recycles_every_field_buffer() {
    // The message path draws outgoing field buffers from the network's
    // BufferPool and returns them on consumption (delivery, loss,
    // dead-letter). At most one sent plus one delivered message can be
    // alive per node at any instant, so a pool pre-warmed to that hard
    // bound must serve 1k rounds without creating a single new buffer.
    let n = 50;
    for loss in [0.0, 0.2] {
        let mut gossip = gossip_instance(n, loss, 777);
        let pool = gossip.network_mut().pool_mut();
        let prewarmed: Vec<Vec<f64>> = (0..2 * n + 2)
            .map(|_| {
                let mut buf = pool.acquire();
                buf.reserve(1 + 2 * n);
                buf
            })
            .collect();
        for buf in prewarmed {
            pool.release(buf);
        }
        let baseline = pool.fresh_allocations();
        gossip.run(1000);
        let pool = gossip.network_mut().pool();
        assert_eq!(
            baseline,
            pool.fresh_allocations(),
            "loss={loss}: 1k rounds over a pre-warmed pool must allocate \
             zero new buffers"
        );
        assert!(pool.reuses() > 1000, "the pool is actually being exercised");
    }

    // Without pre-warming, allocations track the random working-set
    // high-water mark — bounded by the same 2n+2, never by round count.
    let mut gossip = gossip_instance(n, 0.0, 777);
    gossip.run(1000);
    let fresh = gossip.network_mut().pool().fresh_allocations();
    assert!(
        fresh <= 2 * n as u64 + 2,
        "cold-start allocations stay within the working-set bound: {fresh}"
    );
}

#[test]
fn scenario_reuse_is_bit_identical_to_fresh() {
    // A `Scenario`'s scratch buffers must not leak state between
    // constructions: running a freshly built scenario twice from two
    // `Scenario::new` calls is the contract the sweep runner relies on.
    let config = ScenarioBuilder::small().seed(108).build().expect("valid");
    let a = Scenario::new(config.clone()).expect("valid").run();
    let b = Scenario::new(config).expect("valid").run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}
