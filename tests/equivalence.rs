//! Bit-identical equivalence fixtures for the optimized hot paths.
//!
//! The scenario loop, the EigenTrust/PowerTrust local-trust storage and
//! the disclosure ledger were rewritten for performance (scratch
//! buffers, incremental CSR, running counters). Those rewrites must not
//! change a single bit of any outcome: this suite pins a grid of
//! (config, seed) fixtures to golden files capturing every float of the
//! [`ScenarioOutcome`] (shortest round-trip form, so the comparison is
//! exact) plus a full [`SweepReport`] CSV.
//!
//! The goldens were generated from the pre-refactor code. To regenerate
//! after an *intentional* semantic change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test equivalence
//! ```
//!
//! and justify the diff in the PR.

use tsn_core::config::PolicyProfile;
use tsn_core::json::format_f64;
use tsn_core::runner::{DisclosureLevel, ScenarioBuilder, SweepGrid, SweepRunner};
use tsn_core::scenario::{Scenario, ScenarioOutcome};
use tsn_reputation::{AnonymizationConfig, MechanismKind, SelectionPolicy};

use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Serializes every field of an outcome in bit-exact text form.
/// `format_f64` emits the shortest string that round-trips, so two
/// outcomes serialize identically iff every float is bit-identical.
fn fingerprint(o: &ScenarioOutcome) -> String {
    let mut s = String::new();
    let f = |v: f64| format_f64(v);
    let vec = |vs: &[f64]| {
        vs.iter()
            .map(|&v| format_f64(v))
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = writeln!(
        s,
        "facets privacy={} reputation={} satisfaction={}",
        f(o.facets.privacy),
        f(o.facets.reputation),
        f(o.facets.satisfaction)
    );
    let _ = writeln!(s, "global_trust {}", f(o.global_trust));
    let _ = writeln!(s, "per_user_trust {}", vec(&o.per_user_trust));
    let _ = writeln!(s, "per_user_satisfaction {}", vec(&o.per_user_satisfaction));
    let _ = writeln!(s, "per_user_respect {}", vec(&o.per_user_respect));
    let _ = writeln!(
        s,
        "power consistency={} rmse={} reliability={} efficiency={} iterations={} overhead={}",
        f(o.power.consistency),
        f(o.power.rmse),
        f(o.power.reliability),
        f(o.power.efficiency),
        o.power.iterations,
        o.power.overhead_per_report
    );
    let _ = writeln!(
        s,
        "satisfaction mean={} min={} jain={} gini={} population={}",
        f(o.satisfaction.mean),
        f(o.satisfaction.min),
        f(o.satisfaction.jain_index),
        f(o.satisfaction.gini),
        o.satisfaction.population
    );
    let _ = writeln!(
        s,
        "ledger respect_rate={} user_breaches={} system_breaches={}",
        f(o.respect_rate),
        o.user_breaches,
        o.system_breaches
    );
    let _ = writeln!(
        s,
        "misc oecd={} willingness={} denial={} interactions={} messages={}",
        f(o.oecd_score),
        f(o.mean_willingness),
        f(o.denial_rate),
        o.interactions,
        o.messages
    );
    for r in &o.samples {
        let _ = writeln!(
            s,
            "round {} sat={} trust={} respect={} consistency={} willingness={} success={} reports={}",
            r.round,
            f(r.mean_satisfaction),
            f(r.mean_trust),
            f(r.respect_rate),
            f(r.consistency),
            f(r.mean_willingness),
            f(r.success_rate),
            r.reports_filed
        );
    }
    s
}

/// The pinned fixture grid: every mechanism, several disclosure levels,
/// every selection-policy variant, churn, adaptation and anonymization.
fn fixtures() -> Vec<(&'static str, ScenarioBuilder)> {
    vec![
        ("eigentrust_full", ScenarioBuilder::small().seed(101)),
        (
            "eigentrust_adaptive_churn",
            ScenarioBuilder::small()
                .seed(102)
                .disclosure(DisclosureLevel::Timestamped)
                .adaptive_disclosure(true)
                .churn(0.3)
                .malicious_fraction(0.3),
        ),
        (
            "powertrust_mixed",
            ScenarioBuilder::small()
                .seed(103)
                .mechanism(MechanismKind::PowerTrust)
                .disclosure(DisclosureLevel::Topical)
                .malicious_fraction(0.3),
        ),
        (
            "beta_minimal_random",
            ScenarioBuilder::small()
                .seed(104)
                .mechanism(MechanismKind::Beta)
                .disclosure(DisclosureLevel::Minimal)
                .selection(SelectionPolicy::Random),
        ),
        (
            "trustme_best_strict",
            ScenarioBuilder::small()
                .seed(105)
                .mechanism(MechanismKind::TrustMe)
                .selection(SelectionPolicy::Best)
                .policy_profile(PolicyProfile::Strict),
        ),
        (
            "none_threshold",
            ScenarioBuilder::small()
                .seed(106)
                .mechanism(MechanismKind::None)
                .selection(SelectionPolicy::Threshold { threshold: 0.5 }),
        ),
        (
            "eigentrust_anonymized",
            ScenarioBuilder::small()
                .seed(107)
                .anonymization(AnonymizationConfig::default()),
        ),
    ]
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}; run with GOLDEN_REGEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name}: outcome is not bit-identical to the pre-refactor golden"
    );
}

#[test]
fn scenario_outcomes_match_pre_refactor_goldens() {
    for (name, builder) in fixtures() {
        let outcome = builder.run().expect("fixture config is valid");
        check_golden(name, &fingerprint(&outcome));
    }
}

#[test]
fn sweep_report_matches_pre_refactor_golden() {
    let grid = SweepGrid::over(ScenarioBuilder::small().nodes(24).rounds(4).graph(4, 0.1))
        .mechanisms([
            MechanismKind::None,
            MechanismKind::Beta,
            MechanismKind::EigenTrust,
        ])
        .disclosures([DisclosureLevel::Minimal, DisclosureLevel::Full])
        .seeds([1, 2]);
    let report = SweepRunner::parallel().run(&grid).expect("valid grid");
    check_golden("sweep_report", &report.to_csv());
}

#[test]
fn repeated_runs_are_bit_identical() {
    for (name, builder) in fixtures() {
        let a = builder.clone().run().expect("valid");
        let b = builder.run().expect("valid");
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{name}: two runs of the same config diverged"
        );
    }
}

#[test]
fn scenario_reuse_is_bit_identical_to_fresh() {
    // A `Scenario`'s scratch buffers must not leak state between
    // constructions: running a freshly built scenario twice from two
    // `Scenario::new` calls is the contract the sweep runner relies on.
    let config = ScenarioBuilder::small().seed(108).build().expect("valid");
    let a = Scenario::new(config.clone()).expect("valid").run();
    let b = Scenario::new(config).expect("valid").run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}
