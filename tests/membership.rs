//! Integration contract of the peer-sampling membership overlay
//! (DESIGN.md §15).
//!
//! The overlay replaces global partner selection with bounded partial
//! views refreshed by view shuffling. These tests pin the contract that
//! the refactor must keep:
//!
//! * view-constrained selection is shard-count invariant (1 = 2 = 8
//!   shards, bit-identical);
//! * a relay-outage run is deterministic: a fresh replay of the same
//!   `(config, seed)` reproduces every float bit-for-bit;
//! * consumers whose whole view is unreachable are counted in the
//!   `isolated` round series instead of panicking or resampling, and
//!   membership-off runs never report isolation;
//! * every peer flows through every view within O(log n) shuffle
//!   rounds (temporal coverage — the dissemination half of uniformity).

use tsn_core::json::format_f64;
use tsn_core::runner::ScenarioBuilder;
use tsn_core::scenario::ScenarioOutcome;
use tsn_simnet::{
    DynamicsPlan, MembershipConfig, MembershipRuntime, SimTime, MEMBERSHIP_SEED_SALT,
};

/// Bit-exact text form of the outcome floats plus the per-round series
/// the overlay feeds (`availability`, `partition_health`, `isolated`).
fn fingerprint(o: &ScenarioOutcome) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "facets {} {} {} trust {}\n",
        format_f64(o.facets.privacy),
        format_f64(o.facets.reputation),
        format_f64(o.facets.satisfaction),
        format_f64(o.global_trust),
    ));
    s.push_str(&format!(
        "counts interactions={} messages={} user_breaches={} system_breaches={} whitewashes={}\n",
        o.interactions, o.messages, o.user_breaches, o.system_breaches, o.whitewashes
    ));
    for v in &o.per_user_trust {
        s.push_str(&format!("t {}\n", format_f64(*v)));
    }
    for r in &o.samples {
        s.push_str(&format!(
            "round {} {} {} {} {} {}\n",
            r.round,
            format_f64(r.mean_trust),
            format_f64(r.mean_satisfaction),
            format_f64(r.availability),
            format_f64(r.partition_health),
            r.isolated,
        ));
    }
    s
}

/// A small overlay so views actually constrain choice: 50 nodes each
/// seeing at most 6 peers, refreshed 3 entries per round.
fn overlay() -> MembershipConfig {
    MembershipConfig {
        view_size: 6,
        shuffle_len: 3,
        healing: 1,
        swap: 2,
        relays: 3,
        relay_fanout: 6,
    }
}

fn base() -> ScenarioBuilder {
    ScenarioBuilder::small()
        .seed(9301)
        .malicious_fraction(0.2)
        .membership(overlay())
}

#[test]
fn view_constrained_selection_is_shard_count_invariant() {
    // The shuffle runs in the serial control path of both engines and
    // the shard phase reads a frozen snapshot of the views, so the
    // shard count must not leak into any float or counter.
    let reference = fingerprint(&base().build_scenario().expect("valid").run_sharded(1));
    for shards in [2usize, 8] {
        let outcome = base().build_scenario().expect("valid").run_sharded(shards);
        assert_eq!(
            reference,
            fingerprint(&outcome),
            "{shards} shards diverged from 1 shard under the membership overlay"
        );
    }
}

#[test]
fn relay_outage_run_replays_bit_identical() {
    // Kill the overlay's three relay slots mid-run (rounds 4..=9 of
    // 16, at one hour per round), so views that decay to empty cannot
    // re-bootstrap — then assert a fresh run replays bit-for-bit.
    let build = || {
        base()
            .rounds(16)
            .dynamics(DynamicsPlan::relay_outage(
                3,
                SimTime::from_secs(4 * 3600),
                SimTime::from_secs(10 * 3600),
            ))
            .run()
            .expect("valid config")
    };
    let a = build();
    let b = build();
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "relay-outage run is not reproducible"
    );
    // The outage is visible: some nodes went offline, so availability
    // dips below 1 somewhere in the run.
    assert!(
        a.samples.iter().any(|r| r.availability < 1.0),
        "relay outage left no trace in availability"
    );
}

#[test]
fn unreachable_views_are_counted_isolated() {
    // Tight views plus heavy churn: some consumer's entire 4-peer view
    // is offline in some round, which must surface as `isolated` —
    // a deterministic skip, not a panic and not a fallback draw from
    // the global population.
    let outcome = ScenarioBuilder::small()
        .seed(9307)
        .rounds(24)
        .churn(0.5)
        .membership(MembershipConfig {
            view_size: 4,
            shuffle_len: 2,
            healing: 1,
            swap: 1,
            relays: 2,
            relay_fanout: 4,
        })
        .run()
        .expect("valid config");
    let total: u64 = outcome.samples.iter().map(|r| r.isolated).sum();
    assert!(
        total > 0,
        "expected at least one isolated consumer under view_size=4, churn=0.5"
    );
    // Isolation skips attempts; the run still makes progress overall.
    assert!(outcome.interactions > 0);
}

#[test]
fn membership_off_runs_never_report_isolation() {
    // Without the overlay every consumer sees the full (connected)
    // graph neighborhood, and offline providers alone never empty it
    // at this scale: the `isolated` series must stay all-zero, which
    // also pins that the legacy path did not grow a new skip branch.
    let outcome = ScenarioBuilder::small()
        .seed(9311)
        .rounds(20)
        .churn(0.3)
        .run()
        .expect("valid config");
    assert!(
        outcome.samples.iter().all(|r| r.isolated == 0),
        "membership-off run reported isolated consumers"
    );
}

#[test]
fn every_peer_reaches_every_view_in_logarithmic_rounds() {
    // Temporal coverage: with view shuffling, the union of one node's
    // successive views sweeps the whole population in O(log n) rounds
    // (coupon collection at shuffle_len fresh entries per round). At
    // n = 48 and shuffle_len = 4 we allow 16·log2(48) ≈ 89 rounds —
    // far beyond the coupon-collector expectation of ~48·ln(48)/4 ≈ 47,
    // so the bound is a regression guard, not a statistical gamble.
    let n = 48usize;
    let config = MembershipConfig {
        view_size: 8,
        shuffle_len: 4,
        healing: 1,
        swap: 3,
        relays: 3,
        relay_fanout: 8,
    };
    let budget = (16.0 * (n as f64).log2()).ceil() as usize;
    let mut runtime =
        MembershipRuntime::new(n, config, 9313 ^ MEMBERSHIP_SEED_SALT).expect("valid overlay");
    let mut seen = vec![vec![false; n]; n];
    for _ in 0..budget {
        runtime.shuffle_round(|_| true, |_, _| true);
        for (observer, seen_row) in seen.iter_mut().enumerate() {
            for peer in runtime
                .view(tsn_simnet::NodeId::from_index(observer))
                .peers()
            {
                seen_row[peer.index()] = true;
            }
        }
    }
    for (observer, seen_row) in seen.iter().enumerate() {
        let missing: Vec<usize> = (0..n).filter(|&p| p != observer && !seen_row[p]).collect();
        assert!(
            missing.is_empty(),
            "node {observer} never saw peers {missing:?} within {budget} rounds"
        );
    }
}
