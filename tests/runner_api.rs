//! Integration coverage for the unified experiment-runner API through
//! the facade crate: builder validation, observer hooks, and the
//! determinism guarantees of the parallel sweep runner.

use tsn::prelude::*;
use tsn::reputation::MechanismKind;

fn tiny() -> ScenarioBuilder {
    ScenarioBuilder::small().nodes(24).rounds(4).graph(4, 0.1)
}

#[test]
fn builder_rejects_bad_knobs_with_field_names() {
    for (builder, field) in [
        (ScenarioBuilder::new().nodes(3), "nodes"),
        (ScenarioBuilder::new().rounds(0), "rounds"),
        (ScenarioBuilder::new().churn(2.0), "churn_offline"),
        (
            ScenarioBuilder::new().leak_probability(1.5),
            "leak_probability",
        ),
        (
            ScenarioBuilder::new().privacy_concern(-0.1),
            "privacy_concern_mean",
        ),
        (ScenarioBuilder::new().graph(5, 0.1), "graph_degree"),
        (ScenarioBuilder::new().graph(8, 1.5), "graph_beta"),
        (
            ScenarioBuilder::new().consumer_role_weight(7.0),
            "consumer_role_weight",
        ),
        (ScenarioBuilder::new().refresh_every(0), "refresh_every"),
        (
            ScenarioBuilder::new().ballot_stuffing(0),
            "ballot_stuffing_factor",
        ),
        (ScenarioBuilder::new().malicious_fraction(1.1), "population"),
    ] {
        let err = builder.build().expect_err("knob must be rejected");
        assert_eq!(err.field, field, "wrong field for {field}: {err}");
        assert!(err.to_string().starts_with("invalid "), "display: {err}");
    }
}

#[test]
fn builder_run_is_deterministic_per_seed() {
    let a = tiny().seed(11).run().unwrap();
    let b = tiny().seed(11).run().unwrap();
    assert_eq!(a.global_trust, b.global_trust);
    assert_eq!(a.per_user_trust, b.per_user_trust);
    assert_eq!(a.messages, b.messages);
    let c = tiny().seed(12).run().unwrap();
    assert_ne!(a.global_trust, c.global_trust);
}

#[test]
fn typed_disclosure_levels_cover_the_ladder() {
    for level in DisclosureLevel::ALL {
        let config = tiny().disclosure(level).build().unwrap();
        assert_eq!(config.disclosure_level, level.index());
    }
    assert_eq!(DisclosureLevel::from_index(99), None);
}

#[test]
fn observers_stream_what_the_outcome_records() {
    let mut recorder = SeriesRecorder::all();
    let outcome = tiny().seed(5).run_observed(&mut [&mut recorder]).unwrap();
    for (name, recorded) in recorder.iter() {
        let mined = outcome
            .series(name)
            .expect("recorder only uses known names");
        assert_eq!(recorded, mined.as_slice(), "series {name} diverged");
    }
}

#[test]
fn sweep_cells_are_bit_identical_across_runs() {
    let grid = || {
        SweepGrid::over(tiny())
            .mechanisms([MechanismKind::Beta, MechanismKind::EigenTrust])
            .disclosures([DisclosureLevel::Minimal, DisclosureLevel::Full])
            .seeds([7, 8])
    };
    let a = SweepRunner::parallel().run(&grid()).unwrap();
    let b = SweepRunner::parallel().run(&grid()).unwrap();
    assert_eq!(a, b, "same grid must reproduce bit-identically");
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn parallel_and_serial_sweeps_agree() {
    let grid = SweepGrid::over(tiny()).all_mechanisms().seeds([1, 2]);
    let serial = SweepRunner::serial().run(&grid).unwrap();
    let parallel = SweepRunner::with_threads(8).run(&grid).unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(serial.cells.len(), 10);
    // Cells arrive in grid order regardless of scheduling.
    assert!(serial
        .cells
        .iter()
        .enumerate()
        .all(|(i, c)| c.cell.index == i));
}

#[test]
fn sweep_rejects_invalid_base_without_running() {
    let err = SweepRunner::parallel()
        .run(&SweepGrid::over(ScenarioBuilder::new().nodes(2)))
        .expect_err("invalid base");
    assert_eq!(err.field, "nodes");
}

#[test]
fn sweep_report_emitters_are_consistent() {
    let grid = SweepGrid::over(tiny()).disclosures(DisclosureLevel::ALL);
    let report = SweepRunner::parallel().run(&grid).unwrap();
    let csv = report.to_csv();
    assert_eq!(csv.lines().count(), 1 + report.cells.len());
    for cell in &report.cells {
        assert!(csv.contains(cell.cell.mechanism.name()));
    }
    let json = report.to_json();
    assert!(json.contains("\"disclosure\":0") && json.contains("\"disclosure\":4"));
    let best = report.best_by_trust().unwrap();
    assert!(report.cells.iter().all(|c| c.trust <= best.trust));
}
