//! Crash-torture: recovery is invisible.
//!
//! The contracts pinned here:
//!
//! 1. **Recover-then-continue == uninterrupted**, bit for bit, at every
//!    crash point that matters — an epoch boundary, mid-epoch with
//!    staged events, mid-partition-window, and mid-journal-write (a
//!    torn record). The only thing a crash may cost is operations that
//!    were never acknowledged, and the client's retry restores even
//!    those.
//! 2. **Corruption degrades, never lies.** A corrupt newest checkpoint
//!    is detected by its per-section CRC, named in the recovery report,
//!    and recovery falls back to the previous checkpoint plus a longer
//!    journal suffix — converging on the same state.
//! 3. **Fault schedules are part of the experiment.** The same
//!    `(FaultPlan, seed)` replays the same crashes, the same storage
//!    damage, and the same retried timeline, bit for bit.

use tsn::prelude::*;
use tsn::reputation::MechanismKind;
use tsn::service::{
    checkpoint_sections, ApplyOutcome, EpochSample, EventJournal, HostState, JournalRecord,
    ServiceStats, CHECKPOINT_SECTIONS,
};

/// One step of a host timeline: an op at its own timestamp, or an
/// explicit clock advance (the epoch-boundary commit).
#[derive(Debug, Clone, Copy)]
enum Action {
    Op(ServiceOp),
    Advance(SimTime),
}

impl Action {
    fn at(&self) -> SimTime {
        match *self {
            Action::Op(op) => op.at(),
            Action::Advance(at) => at,
        }
    }

    fn run(&self, host: &mut ServiceHost) {
        match *self {
            Action::Op(op) => {
                host.apply(&op).expect("workload ops are valid");
            }
            Action::Advance(at) => host.advance_to(at).expect("advance is valid"),
        }
    }
}

/// Everything observable about a service, bit-exact.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    now_us: u64,
    epoch: u64,
    staged: usize,
    stats: ServiceStats,
    samples: Vec<EpochSample>,
    score_bits: Vec<u64>,
}

fn fingerprint(service: &TrustService) -> Fingerprint {
    Fingerprint {
        now_us: service.now().as_micros(),
        epoch: service.epoch_index(),
        staged: service.staged_len(),
        stats: service.stats(),
        samples: service.samples().to_vec(),
        score_bits: service.scores().iter().map(|s| s.to_bits()).collect(),
    }
}

/// A 3-epoch workload over 30 nodes with a partition window open inside
/// epoch 1 (70 s – 110 s on a 60 s epoch), so crash points can land
/// mid-window.
fn torture_setup() -> (ServiceDriver, HostConfig, Vec<Action>) {
    let nodes = 30;
    let epochs = 3u64;
    let driver = ServiceDriver::new(DriverConfig {
        nodes,
        arrival_rate: 2.0,
        disclosure_rate: 0.25,
        query_rate: 0.4,
        malicious_fraction: 0.2,
        seed: 11,
        membership: None,
    })
    .expect("valid driver");
    let service = ServiceConfig {
        nodes,
        epoch: SimDuration::from_secs(60),
        partitions: vec![PartitionWindow::full_split(
            SimTime::from_secs(70),
            SimTime::from_secs(110),
            2,
        )],
        ..ServiceConfig::default()
    };
    let host = HostConfig {
        service: service.clone(),
        journal: true,
        checkpoint_every_epochs: 1,
        retain_checkpoints: 2,
        recovery_grace: SimDuration::ZERO,
        ..HostConfig::default()
    };
    let probe = TrustService::new(service).expect("valid service");
    let mut actions = Vec::new();
    for epoch in 0..epochs {
        for op in driver.ops_for_epoch(&probe, epoch) {
            actions.push(Action::Op(op));
        }
        actions.push(Action::Advance(probe.epoch_end(epoch)));
    }
    (driver, host, actions)
}

fn reference_run(config: &HostConfig, actions: &[Action]) -> Fingerprint {
    let mut host = ServiceHost::new(config.clone()).expect("valid host");
    for action in actions {
        action.run(&mut host);
    }
    fingerprint(host.service().expect("reference host never crashes"))
}

/// Runs `actions` with a crash at `crash_at` (torn journal tail when
/// `torn`), an immediate restart, and — for the torn case — the
/// client's retry of the one unacknowledged operation. Returns the
/// final fingerprint and the recovery report.
fn crashed_run(
    config: &HostConfig,
    actions: &[Action],
    crash_at: SimTime,
    torn: bool,
) -> (Fingerprint, tsn::service::RecoveryReport) {
    let mut host = ServiceHost::new(config.clone()).expect("valid host");
    let mut crashed = false;
    let mut last_applied: Option<Action> = None;
    for action in actions {
        if !crashed && action.at() >= crash_at {
            if torn {
                host.crash_torn(crash_at);
            } else {
                host.crash(crash_at);
            }
            host.restart(crash_at).expect("recovery succeeds");
            if torn {
                // The torn record's op was never acknowledged; the
                // client reissues it verbatim.
                last_applied
                    .expect("crash points land after at least one action")
                    .run(&mut host);
            }
            crashed = true;
        }
        action.run(&mut host);
        last_applied = Some(*action);
    }
    assert!(crashed, "crash point {crash_at:?} must land inside the run");
    let report = host.last_recovery().expect("recovery ran").clone();
    (fingerprint(host.service().expect("host ends up")), report)
}

/// Contract 1, clean crashes: sweep the named crash points plus an
/// even spread across the whole timeline.
#[test]
fn recovery_is_bit_identical_at_every_crash_point() {
    let (_, config, actions) = torture_setup();
    let reference = reference_run(&config, &actions);
    let epoch_end = SimTime::from_secs(60);
    let mut crash_points = vec![
        epoch_end,                                             // exactly the epoch boundary
        epoch_end.saturating_add(SimDuration::from_micros(1)), // just inside epoch 1
        SimTime::from_secs(90),                                // mid-partition-window
        SimTime::from_secs(150),                               // mid-epoch 2, staged events
    ];
    // An even spread: every eighth of the timeline.
    let len = actions.len();
    for i in 1..8 {
        crash_points.push(actions[i * len / 8].at());
    }
    for &crash_at in &crash_points {
        let (recovered, report) = crashed_run(&config, &actions, crash_at, false);
        assert!(!report.torn_tail, "clean crashes leave no torn tail");
        assert_eq!(
            recovered, reference,
            "recover-then-continue diverged for a clean crash at {crash_at:?}"
        );
    }
}

/// Contract 1, mid-journal-write crashes: the torn record's op is the
/// only loss, and the client's retry makes the run whole again.
#[test]
fn torn_journal_recovery_is_bit_identical_after_the_client_retries() {
    let (_, config, actions) = torture_setup();
    let reference = reference_run(&config, &actions);
    let len = actions.len();
    for i in [len / 5, len / 2, 4 * len / 5] {
        let crash_at = actions[i].at();
        let (recovered, report) = crashed_run(&config, &actions, crash_at, true);
        assert!(
            report.torn_tail,
            "a mid-append crash must be detected as torn"
        );
        assert_eq!(
            recovered, reference,
            "torn-tail recovery + retry diverged for a crash at {crash_at:?}"
        );
    }
}

/// Contract 2: bit rot on the newest checkpoint write is detected by a
/// section CRC, named, and recovery falls back to the previous
/// checkpoint — still converging bit-identically.
#[test]
fn corrupt_newest_checkpoint_falls_back_and_still_converges() {
    let (_, config, actions) = torture_setup();
    let reference = reference_run(&config, &actions);
    let mut host = ServiceHost::new(config.clone()).expect("valid host");
    // Rot exactly the checkpoint written at the epoch-2 boundary
    // (120 s); the epoch-1 checkpoint (60 s) stays clean.
    host.attach_faults(
        FaultInjector::new(
            FaultPlan::bit_rot(SimTime::from_secs(115), SimTime::from_secs(125)),
            77,
        )
        .expect("valid plan"),
    );
    let crash_at = SimTime::from_secs(150);
    let mut crashed = false;
    for action in &actions {
        if !crashed && action.at() >= crash_at {
            host.crash(crash_at);
            host.restart(crash_at).expect("fallback recovery succeeds");
            crashed = true;
        }
        action.run(&mut host);
    }
    let report = host.last_recovery().expect("recovery ran").clone();
    assert_eq!(
        report.fallbacks, 1,
        "the rotted newest checkpoint is skipped"
    );
    assert!(
        report.corrupt[0].contains("is corrupt") || report.corrupt[0].contains("section"),
        "the divergence must be reported with its cause: {}",
        report.corrupt[0]
    );
    assert!(!report.from_scratch, "the previous checkpoint restores");
    assert_eq!(host.stats().storage_faults, 1);
    assert_eq!(host.stats().checkpoint_fallbacks, 1);
    assert_eq!(
        fingerprint(host.service().expect("host ends up")),
        reference,
        "fallback recovery must converge on the uninterrupted state"
    );
}

/// Contract 3: the whole faulted pipeline — scheduled crash, storage
/// rot, client retries — replays bit for bit from `(plan, seed)`.
#[test]
fn faulted_runs_replay_bit_for_bit() {
    let run = || {
        let driver = ServiceDriver::new(DriverConfig {
            nodes: 25,
            arrival_rate: 2.0,
            seed: 5,
            ..DriverConfig::default()
        })
        .expect("valid driver");
        let mut host = ServiceHost::new(HostConfig {
            service: ServiceConfig {
                nodes: 25,
                epoch: SimDuration::from_secs(60),
                ..ServiceConfig::default()
            },
            recovery_grace: SimDuration::from_secs(4),
            ..HostConfig::default()
        })
        .expect("valid host");
        let mut plan = FaultPlan::service_crash(SimTime::from_secs(80), SimDuration::from_secs(15));
        plan.storage = FaultPlan::bit_rot(SimTime::from_secs(55), SimTime::from_secs(65)).storage;
        host.attach_faults(FaultInjector::new(plan, 21).expect("valid plan"));
        let report = driver
            .drive_host(&mut host, 3, &RetryPolicy::default())
            .expect("drive succeeds");
        (
            report,
            host.stats(),
            fingerprint(host.service().expect("up at the end")),
        )
    };
    let (report_a, stats_a, state_a) = run();
    let (report_b, stats_b, state_b) = run();
    assert!(stats_a.crashes >= 1, "the scheduled crash fired");
    assert!(report_a.retries > 0, "downtime ops were retried");
    assert_eq!(report_a, report_b);
    assert_eq!(stats_a, stats_b);
    assert_eq!(state_a, state_b);
}

/// Degraded reads during the recovery window are marked and leave no
/// trace: a run that issues them ends bit-identical to one that skips
/// them.
#[test]
fn degraded_queries_are_marked_and_leave_no_trace() {
    let build = || {
        let mut host = ServiceHost::new(HostConfig {
            service: ServiceConfig {
                nodes: 10,
                epoch: SimDuration::from_secs(60),
                ..ServiceConfig::default()
            },
            recovery_grace: SimDuration::from_secs(10),
            ..HostConfig::default()
        })
        .expect("valid host");
        let op = ServiceOp::Ingest(ServiceEvent::Interaction {
            rater: NodeId(0),
            ratee: NodeId(1),
            outcome: tsn::reputation::InteractionOutcome::Success { quality: 1.0 },
            at: SimTime::from_secs(5),
        });
        host.apply(&op).expect("ingest");
        host.advance_to(SimTime::from_secs(60)).expect("commit");
        host.crash(SimTime::from_secs(70));
        host.restart(SimTime::from_secs(75)).expect("recovery");
        assert_eq!(host.state(), HostState::Recovering);
        host
    };
    let mut with_reads = build();
    for node in 0..5u32 {
        let outcome = with_reads
            .apply(&ServiceOp::QueryTrust {
                node: NodeId(node),
                at: SimTime::from_secs(80),
            })
            .expect("degraded queries answer");
        let ApplyOutcome::Trust(answer) = outcome else {
            panic!("trust queries answer with trust results");
        };
        assert_eq!(answer.mode, Staleness::Degraded);
    }
    assert_eq!(with_reads.stats().degraded_queries, 5);
    let without_reads = build();
    let close = |mut h: ServiceHost| {
        h.advance_to(SimTime::from_secs(120)).expect("advance");
        fingerprint(h.service().expect("up"))
    };
    assert_eq!(
        close(with_reads),
        close(without_reads),
        "degraded reads must not perturb recovered state"
    );
}

/// Satellite: truncating a checkpoint at (and inside) every section
/// names that section in the error, table-driven over the format's
/// section order.
#[test]
fn checkpoint_truncation_names_every_section() {
    let (_, config, actions) = torture_setup();
    let mut host = ServiceHost::new(config).expect("valid host");
    // Run past a partition window and a couple of commits so every
    // section is non-trivial, stopping mid-epoch so events are staged.
    for action in &actions {
        if action.at() >= SimTime::from_secs(150) {
            break;
        }
        action.run(&mut host);
    }
    let bytes = host
        .service()
        .expect("up")
        .checkpoint()
        .expect("checkpoint");
    let sections = checkpoint_sections(&bytes).expect("well-formed checkpoint");
    assert_eq!(sections.len(), CHECKPOINT_SECTIONS.len());
    for (section, name) in sections.iter().zip(CHECKPOINT_SECTIONS) {
        assert_eq!(section.name, name, "sections come in format order");
        assert!(section.crc_ok, "an untouched checkpoint is clean");
        // Truncating anywhere inside the section names it: right at its
        // start, just after its CRC word, and mid-payload.
        for cut in [
            section.offset,
            section.offset + 2,
            section.offset + section.len / 2,
        ] {
            let err = TrustService::restore(&bytes[..cut]).expect_err("truncated");
            assert!(
                err.contains(&format!("'{name}'")),
                "truncation at byte {cut} must blame section '{name}', got: {err}"
            );
            assert!(
                err.contains("at offset") || err.contains("is corrupt"),
                "truncation errors carry the byte offset, got: {err}"
            );
        }
        // A flipped bit inside the payload fails that section's CRC.
        let mut rotted = bytes.clone();
        rotted[section.offset + section.len / 2] ^= 0x10;
        let err = TrustService::restore(&rotted).expect_err("corrupt");
        assert!(
            err.contains(&format!("'{name}'")),
            "bit rot in section '{name}' must be blamed on it, got: {err}"
        );
    }
}

/// Satellite: an unsupported mechanism's checkpoint error states which
/// mechanisms *do* support snapshots.
#[test]
fn unsupported_checkpoint_error_lists_capable_mechanisms() {
    let service = TrustService::new(ServiceConfig {
        nodes: 8,
        mechanism: MechanismKind::PowerTrust,
        ..ServiceConfig::default()
    })
    .expect("valid service");
    let err = service
        .checkpoint()
        .expect_err("powertrust cannot snapshot");
    for name in ["powertrust", "none", "beta", "eigentrust"] {
        assert!(err.contains(name), "error must mention {name}: {err}");
    }
}

/// Satellite (property test): the journal round-trips randomized
/// record batches — empty epochs included, extreme field values
/// included — and any single-bit corruption is caught, losing at most
/// the records at and after the damage.
#[test]
fn journal_round_trips_random_batches_and_catches_single_bit_rot() {
    let mut rng = SimRng::seed_from_u64(99);
    for trial in 0..25 {
        let count: usize = rng.gen_range(0..40);
        let mut records = Vec::new();
        let mut at_us: u64 = 0;
        for _ in 0..count {
            at_us += rng.gen_range(0..5_000_000u64);
            let at = SimTime::from_micros(at_us);
            let record = match rng.gen_range(0..5u8) {
                0 => JournalRecord::Op(ServiceOp::Ingest(ServiceEvent::Interaction {
                    rater: NodeId(rng.gen_range(0..1000u32)),
                    ratee: NodeId(u32::MAX), // extreme id survives the codec
                    outcome: tsn::reputation::InteractionOutcome::Success {
                        quality: rng.gen_f64(),
                    },
                    at,
                })),
                1 => JournalRecord::Op(ServiceOp::Ingest(ServiceEvent::Disclosure {
                    node: NodeId(rng.gen_range(0..1000u32)),
                    respected: rng.gen_bool(0.5),
                    at,
                })),
                2 => JournalRecord::Op(ServiceOp::QueryTrust {
                    node: NodeId(rng.gen_range(0..1000u32)),
                    at,
                }),
                3 => JournalRecord::Op(ServiceOp::QueryExposure {
                    node: NodeId(rng.gen_range(0..1000u32)),
                    at,
                }),
                // An empty epoch: nothing but its boundary advance.
                _ => JournalRecord::Advance { at },
            };
            records.push(record);
        }
        // Small segments so every trial crosses seal boundaries; the
        // flattened record stream must be segmentation-invariant.
        let mut journal = EventJournal::with_segment_bytes(256);
        for record in &records {
            journal.append(record);
        }
        let body = journal.flattened_body();
        let scan = EventJournal::scan(&body);
        assert!(!scan.torn, "trial {trial}: clean bytes scan clean");
        assert_eq!(scan.records, records, "trial {trial}: round trip");
        if body.is_empty() {
            continue;
        }
        // Single-bit rot at a random position: the valid prefix is
        // exactly the records before the damaged one.
        let byte: usize = rng.gen_range(0..body.len());
        let bit = 1u8 << rng.gen_range(0..8u8);
        let mut rotted = body.clone();
        rotted[byte] ^= bit;
        let damaged = EventJournal::scan(&rotted);
        assert!(
            damaged.torn || damaged.records.len() < records.len(),
            "trial {trial}: a flipped bit must be caught"
        );
        assert_eq!(
            damaged.records[..],
            records[..damaged.records.len()],
            "trial {trial}: everything before the damage survives intact"
        );
    }
}

/// Satellite: a crash **during the checkpoint write itself**. The
/// newest ring generation is left truncated at every section boundary
/// of the format (and mid-payload), table-driven; recovery must grade
/// the torn generation, blame the damaged section by name, fall back
/// to the previous generation, and still converge bit-identically.
#[test]
fn torn_checkpoint_write_is_skipped_at_every_section_boundary() {
    let (_, config, actions) = torture_setup();
    let reference = reference_run(&config, &actions);
    // Crash at 150 s: the ring then holds the 60 s and 120 s
    // generations, so a torn newest write still has a clean fallback.
    let crash_at = SimTime::from_secs(150);
    // Discover the section layout of the generation actually written at
    // the 120 s boundary.
    let mut probe = ServiceHost::new(config.clone()).expect("valid host");
    for action in &actions {
        if action.at() >= crash_at {
            break;
        }
        action.run(&mut probe);
    }
    let newest = probe
        .stored_checkpoints()
        .last()
        .expect("the ring holds two generations by 150 s")
        .clone();
    assert!(newest.intact, "the untouched generation grades clean");
    let sections = checkpoint_sections(&newest.bytes).expect("well-formed checkpoint");
    assert_eq!(sections.len(), CHECKPOINT_SECTIONS.len());

    // The write can die right at a section's start or partway through
    // its payload; both must be skipped the same way.
    let mut cuts = Vec::new();
    for section in &sections {
        cuts.push((section.name, section.offset));
        cuts.push((section.name, section.offset + section.len / 2));
    }
    for (name, cut) in cuts {
        let mut host = ServiceHost::new(config.clone()).expect("valid host");
        let mut crashed = false;
        for action in &actions {
            if !crashed && action.at() >= crash_at {
                assert!(
                    host.tear_newest_checkpoint(cut),
                    "the ring is non-empty at the crash"
                );
                host.crash(crash_at);
                host.restart(crash_at).expect("fallback recovery succeeds");
                crashed = true;
            }
            action.run(&mut host);
        }
        let report = host.last_recovery().expect("recovery ran").clone();
        assert_eq!(
            report.fallbacks, 1,
            "exactly the torn generation is skipped (cut at byte {cut})"
        );
        assert!(
            !report.from_scratch,
            "the previous generation must restore (cut at byte {cut})"
        );
        assert!(
            report.corrupt[0].contains(&format!("'{name}'")),
            "the torn write at byte {cut} must blame section '{name}', got: {}",
            report.corrupt[0]
        );
        assert_eq!(
            fingerprint(host.service().expect("host ends up")),
            reference,
            "fallback recovery diverged for a checkpoint torn at byte {cut}"
        );
    }
}
