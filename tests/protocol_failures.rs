//! Failure injection across the protocol and simulator layers:
//! partitions, regional latency, crash-recovery interplay.

use tsn::graph::generators;
use tsn::protocol::{GossipConfig, GossipNetwork, ManagerConfig, ManagerNetwork};
use tsn::simnet::{
    GroupMap, Network, NetworkConfig, NoLoss, NodeId, PartitionedLoss, RegionalLatency,
    SimDuration, SimRng,
};

fn partitioned_network(n: usize, groups: usize, seed: u64) -> Network {
    let map = GroupMap::contiguous(n, groups);
    let config = NetworkConfig {
        latency: Box::new(RegionalLatency::new(
            map.clone(),
            SimDuration::from_millis(5),
            SimDuration::from_millis(5),
        )),
        loss: Box::new(PartitionedLoss::full_partition(map)),
    };
    let mut network = Network::new(config, SimRng::seed_from_u64(seed));
    for _ in 0..n {
        network.add_node();
    }
    network
}

#[test]
fn gossip_islands_diverge_under_full_partition() {
    // Subject 0 is observed only in island A (nodes 0..15): island B's
    // nodes can never learn about it while the partition holds.
    let n = 30;
    let mut rng = SimRng::seed_from_u64(1);
    let graph = generators::watts_strogatz(n, 6, 0.1, &mut rng).unwrap();
    let mut gossip = GossipNetwork::new(
        graph,
        partitioned_network(n, 2, 2),
        GossipConfig {
            subjects: n,
            ..Default::default()
        },
        rng.fork(1),
    );
    for observer in 0..15u32 {
        gossip.observe(NodeId(observer), 0, 0.95);
    }
    gossip.run(40);
    // An island-A node has learned subject 0 is good; an island-B node
    // still sits near the prior.
    let a_estimate = gossip.estimate(NodeId(3), 0);
    let b_estimate = gossip.estimate(NodeId(25), 0);
    assert!(a_estimate > 0.7, "island A converges: {a_estimate}");
    assert!(
        (b_estimate - 0.5).abs() < 0.15,
        "island B stays near the prior: {b_estimate}"
    );
}

#[test]
fn gossip_heals_after_partition_lifts() {
    // Same split, executed as a *scheduled* partition window on the
    // dynamics plan: the runtime swaps the loss model in at the window
    // start and restores it at the heal, mid-run, on the same instance —
    // no fresh-network modelling trick.
    let n = 20;
    let mut rng = SimRng::seed_from_u64(3);
    let graph = generators::watts_strogatz(n, 6, 0.1, &mut rng).unwrap();
    let config = NetworkConfig {
        loss: Box::new(NoLoss),
        ..Default::default()
    };
    let mut network = Network::new(config, rng.fork(1));
    for _ in 0..n {
        network.add_node();
    }
    let mut gossip = GossipNetwork::new(
        graph,
        network,
        GossipConfig {
            subjects: n,
            ..Default::default()
        },
        rng.fork(2),
    );
    for observer in 0..n as u32 / 2 {
        gossip.observe(NodeId(observer), 0, 0.9);
    }
    // Rounds are 100ms: split for the first 20 rounds, then heal.
    gossip
        .attach_dynamics(
            tsn::simnet::DynamicsPlan::split_then_heal(
                tsn::simnet::SimTime::ZERO,
                tsn::simnet::SimTime::from_millis(2_050),
            ),
            rng.fork(3),
        )
        .expect("valid plan");
    gossip.run(20);
    let far_node = NodeId((n - 1) as u32);
    let during = gossip.estimate(far_node, 0);
    assert!(
        (during - 0.5).abs() < 0.15,
        "the far island cannot learn during the split: {during}"
    );
    gossip.run(40);
    let healed = gossip.estimate(far_node, 0);
    assert!(
        healed > 0.7,
        "after the mid-run heal the far island converges: {healed}"
    );
}

#[test]
fn managers_behind_a_partition_cannot_answer() {
    let n = 20;
    let config = ManagerConfig {
        replicas: 2,
        ..Default::default()
    };
    let mut managers = ManagerNetwork::new(partitioned_network(n, 2, 4), config);
    // A subject whose replicas are ALL in the far island (group 1, nodes
    // 10..20) relative to requester 0. Placement is deterministic.
    let subject = (0..n as u32)
        .map(NodeId)
        .find(|&s| managers.managers(s).iter().all(|m| m.index() >= 10))
        .expect("deterministic placement provides an island-B subject");
    managers.submit_query(NodeId(0), subject);
    managers.run(5);
    assert_eq!(
        managers.answer(NodeId(0), subject),
        None,
        "queries cannot cross a full partition"
    );
}

#[test]
fn managers_same_island_still_work_during_partition() {
    let n = 20;
    let config = ManagerConfig {
        replicas: 2,
        ..Default::default()
    };
    let mut managers = ManagerNetwork::new(partitioned_network(n, 2, 5), config);
    // The same island-B subject, but served and queried from island B.
    let subject = (0..n as u32)
        .map(NodeId)
        .find(|&s| managers.managers(s).iter().all(|m| m.index() >= 10))
        .expect("deterministic placement provides an island-B subject");
    let b_reporter = NodeId(12);
    let b_requester = NodeId(14);
    for _ in 0..3 {
        managers.submit_report(b_reporter, subject, 0.9);
    }
    managers.run(2);
    managers.submit_query(b_requester, subject);
    managers.run(3);
    assert!(
        managers.answer(b_requester, subject).is_some(),
        "island-local service survives the partition"
    );
}

#[test]
fn regional_latency_slows_cross_region_gossip() {
    // With slow inter-region links and a short round, cross-region pushes
    // arrive rounds later; convergence within a region is faster than
    // across. We simply check overall convergence still happens.
    let n = 20;
    let map = GroupMap::contiguous(n, 2);
    let config = NetworkConfig {
        latency: Box::new(RegionalLatency::new(
            map,
            SimDuration::from_millis(5),
            SimDuration::from_millis(450),
        )),
        loss: Box::new(NoLoss),
    };
    let mut network = Network::new(config, SimRng::seed_from_u64(6));
    for _ in 0..n {
        network.add_node();
    }
    let mut rng = SimRng::seed_from_u64(7);
    let graph = generators::watts_strogatz(n, 6, 0.1, &mut rng).unwrap();
    let mut gossip = GossipNetwork::new(
        graph,
        network,
        GossipConfig {
            subjects: n,
            round_length: SimDuration::from_millis(100),
            ..Default::default()
        },
        rng.fork(1),
    );
    for observer in 0..n as u32 {
        gossip.observe(NodeId(observer), 0, 0.8);
    }
    gossip.run(80);
    let report = gossip.report();
    assert!(
        report.mean_error < 0.1,
        "slow links delay but do not prevent convergence: {}",
        report.mean_error
    );
}
