//! Tier-1 self-test for `tsn-lint` (DESIGN.md §14).
//!
//! Two obligations, both load-bearing:
//!
//! 1. **The workspace is clean.** `lint_workspace` over this repository
//!    must report zero findings and zero unjustified pragmas — the same
//!    gate CI runs via `cargo run -p tsn-lint`.
//! 2. **Every rule actually fires.** For each of the six shipped rules,
//!    a planted violation must produce exactly the expected finding; a
//!    rule that silently stops matching would otherwise rot unnoticed
//!    behind obligation 1.

use std::path::Path;

use tsn_lint::engine::{classify, lint_source, lint_workspace};
use tsn_lint::lexer::lex;
use tsn_lint::rules::{check_crate_root, check_lockfile, FileScope, Finding, RuleId};

fn rules_fired(findings: &[Finding]) -> Vec<RuleId> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------------
// Obligation 1: the workspace itself is clean.
// ---------------------------------------------------------------------

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace lints");
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: {}: {}", f.path, f.line, f.rule.name(), f.message))
        .collect();
    assert!(
        report.is_clean(),
        "tsn-lint found violations in the workspace:\n{}",
        rendered.join("\n")
    );
    assert!(report.files_scanned > 100, "the walk saw the whole tree");
    assert!(
        !report.packages.is_empty(),
        "Cargo.lock package inventory resolved"
    );
}

#[test]
fn workspace_pragmas_all_carry_justifications() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace lints");
    for p in &report.pragmas {
        assert!(
            !p.justification.trim().is_empty(),
            "{}:{}: pragma for {} has an empty justification",
            p.path,
            p.line,
            p.rule.name()
        );
        assert!(
            p.used,
            "{}:{}: stale pragma survived the walk",
            p.path, p.line
        );
    }
    assert_eq!(
        report.suppressed.len(),
        report.pragmas.len(),
        "every recorded pragma suppresses exactly one finding"
    );
}

// ---------------------------------------------------------------------
// Obligation 2: each rule fires on a planted violation.
// ---------------------------------------------------------------------

#[test]
fn rule_hash_iter_fires() {
    let src = r#"
use std::collections::HashMap;
pub fn tally(votes: &HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    for (_, v) in votes.iter() {
        total += v;
    }
    total
}
"#;
    let findings = lint_source(FileScope::Library, "fixture.rs", src);
    assert!(
        rules_fired(&findings).contains(&RuleId::HashIter),
        "planted HashMap iteration not caught: {findings:?}"
    );
}

#[test]
fn rule_hash_iter_spares_test_scope() {
    let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32,u32>) { for k in m.keys() { let _ = k; } }\n";
    assert!(
        lint_source(FileScope::Test, "fixture.rs", src).is_empty(),
        "integration-test scope is exempt from hash-iter"
    );
}

#[test]
fn rule_wall_clock_fires() {
    let src = "pub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let findings = lint_source(FileScope::Library, "fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec![RuleId::WallClock]);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn rule_wall_clock_fires_even_in_bench_scope() {
    // Bench code may use wall-clock time, but only behind a visible,
    // justified pragma — the bare call still fires.
    let src = "fn measure() { let _ = std::time::Instant::now(); }\n";
    let findings = lint_source(FileScope::Bench, "fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec![RuleId::WallClock]);
}

#[test]
fn rule_foreign_rng_fires() {
    let src = "pub fn roll() -> u64 {\n    let x = rand::thread_rng();\n    x\n}\n";
    let findings = lint_source(FileScope::Library, "fixture.rs", src);
    assert!(
        rules_fired(&findings).contains(&RuleId::ForeignRng),
        "planted thread_rng not caught: {findings:?}"
    );
}

#[test]
fn rule_no_unwrap_fires() {
    let src = "pub fn first(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n";
    let findings = lint_source(FileScope::Library, "fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec![RuleId::NoUnwrap]);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn rule_no_unwrap_spares_cfg_test_modules() {
    let src = "pub fn ok() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert!(
        lint_source(FileScope::Library, "fixture.rs", src).is_empty(),
        "#[cfg(test)] regions are exempt from no-unwrap"
    );
}

#[test]
fn rule_forbid_unsafe_fires() {
    let bad = lex("//! A crate.\npub fn f() {}\n");
    let finding = check_crate_root("crates/x/src/lib.rs", &bad).expect("missing attribute caught");
    assert_eq!(finding.rule, RuleId::ForbidUnsafe);

    let good = lex("//! A crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n");
    assert!(check_crate_root("crates/x/src/lib.rs", &good).is_none());
}

#[test]
fn rule_workspace_purity_fires() {
    let members = vec!["tsn-core".to_string()];
    let lock = r#"
version = 3

[[package]]
name = "tsn-core"
version = "0.1.0"

[[package]]
name = "serde"
version = "1.0.200"
source = "registry+https://github.com/rust-lang/crates.io-index"
"#;
    let (findings, packages) = check_lockfile(lock, &members);
    assert_eq!(rules_fired(&findings), vec![RuleId::WorkspacePurity]);
    assert!(findings[0].message.contains("serde"));
    assert_eq!(packages.len(), 2, "inventory lists every resolved package");

    let clean = r#"
[[package]]
name = "tsn-core"
version = "0.1.0"
"#;
    let (findings, _) = check_lockfile(clean, &members);
    assert!(findings.is_empty());
}

// ---------------------------------------------------------------------
// Pragma semantics: suppression needs a justification, and the
// justification must target the right rule.
// ---------------------------------------------------------------------

#[test]
fn justified_pragma_suppresses() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n    // tsn-lint: allow(no-unwrap, \"fixture: slice is non-empty by contract\")\n    *v.first().unwrap()\n}\n";
    assert!(lint_source(FileScope::Library, "fixture.rs", src).is_empty());
}

#[test]
fn pragma_without_justification_is_itself_a_violation() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n    // tsn-lint: allow(no-unwrap)\n    *v.first().unwrap()\n}\n";
    let fired = rules_fired(&lint_source(FileScope::Library, "fixture.rs", src));
    assert!(
        fired.contains(&RuleId::PragmaHygiene),
        "bare pragma accepted: {fired:?}"
    );
    assert!(
        fired.contains(&RuleId::NoUnwrap),
        "bare pragma must not suppress"
    );
}

#[test]
fn stale_pragma_is_flagged() {
    let src = "// tsn-lint: allow(no-unwrap, \"nothing here needs it\")\npub fn f() {}\n";
    let fired = rules_fired(&lint_source(FileScope::Library, "fixture.rs", src));
    assert_eq!(fired, vec![RuleId::PragmaHygiene]);
}

#[test]
fn wrong_rule_pragma_does_not_suppress() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n    // tsn-lint: allow(wall-clock, \"fixture: misdirected\")\n    *v.first().unwrap()\n}\n";
    let fired = rules_fired(&lint_source(FileScope::Library, "fixture.rs", src));
    assert!(fired.contains(&RuleId::NoUnwrap));
    assert!(
        fired.contains(&RuleId::PragmaHygiene),
        "misdirected pragma is stale"
    );
}

// ---------------------------------------------------------------------
// Lexer discipline: rules must only ever see the code channel.
// ---------------------------------------------------------------------

#[test]
fn violations_in_comments_and_strings_do_not_fire() {
    let src = concat!(
        "//! Discusses Instant::now() and .unwrap() at length.\n",
        "/* block comment: thread_rng() /* nested: SystemTime */ still comment */\n",
        "pub fn f() -> &'static str {\n",
        "    \"Instant::now() inside a string\"\n",
        "}\n",
        "pub fn g() -> &'static str {\n",
        "    r#\"raw string with .unwrap() and \"quotes\" inside\"#\n",
        "}\n",
    );
    assert!(
        lint_source(FileScope::Library, "fixture.rs", src).is_empty(),
        "literal/comment channel leaked into the rules"
    );
}

#[test]
fn line_comment_marker_inside_string_stays_code() {
    // `//` inside a string must not comment out the rest of the line —
    // the violation after it still fires.
    let src = "pub fn f() { let _ = (\"https://x\", std::time::Instant::now()); }\n";
    let findings = lint_source(FileScope::Library, "fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec![RuleId::WallClock]);
}

// ---------------------------------------------------------------------
// Scope classification: the walk maps paths to the right rule sets.
// ---------------------------------------------------------------------

#[test]
fn classify_maps_paths_to_scopes() {
    assert_eq!(classify("crates/core/src/trust.rs"), FileScope::Library);
    assert_eq!(classify("crates/bench/src/harness.rs"), FileScope::Bench);
    assert_eq!(
        classify("crates/bench/benches/service.rs"),
        FileScope::Bench
    );
    assert_eq!(classify("tests/lint.rs"), FileScope::Test);
    assert_eq!(classify("examples/mega_scale.rs"), FileScope::Example);
    assert_eq!(classify("src/bin/tsn.rs"), FileScope::Bin);
}
