//! End-to-end tests of the dynamics layer: churn, partitions and
//! whitewashing executed through the protocol stack and the scenario
//! engine.
//!
//! The acceptance contract:
//!
//! * with no dynamics plan, outcomes are bit-identical to the pinned
//!   goldens (covered by `tests/equivalence.rs`; the static-plan
//!   variants here pin the protocol side);
//! * `split_then_heal` produces cross-group score divergence during the
//!   partition and reconvergence after the heal;
//! * `whitewash_attack` re-enters whitewashed identities with *reset*
//!   (not inherited) reputation.

use tsn::core::runner::{ScenarioBuilder, SeriesRecorder};
use tsn::graph::generators;
use tsn::protocol::{GossipConfig, GossipNetwork};
use tsn::simnet::{
    dynamics::{DynamicsPlan, DynamicsRuntime, PartitionWindow},
    latency::ConstantLatency,
    ChurnConfig, Network, NetworkConfig, NoLoss, NodeId, SimDuration, SimRng, SimTime,
};

/// A clean-network gossip instance over a two-community-friendly
/// overlay; observations about subject 0 come only from the lower half.
fn gossip_with_lower_half_evidence(n: usize, seed: u64) -> GossipNetwork {
    let mut rng = SimRng::seed_from_u64(seed);
    let graph = generators::watts_strogatz(n, 6, 0.1, &mut rng).expect("valid overlay");
    let config = NetworkConfig {
        latency: Box::new(ConstantLatency(SimDuration::from_millis(10))),
        loss: Box::new(NoLoss),
    };
    let mut network = Network::new(config, rng.fork(1));
    for _ in 0..n {
        network.add_node();
    }
    let mut gossip = GossipNetwork::new(
        graph,
        network,
        GossipConfig {
            subjects: n,
            ..Default::default()
        },
        rng.fork(2),
    );
    for observer in 0..n as u32 / 2 {
        gossip.observe(NodeId(observer), 0, 0.95);
    }
    gossip
}

#[test]
fn split_then_heal_diverges_then_reconverges() {
    let n = 30;
    let mut gossip = gossip_with_lower_half_evidence(n, 100);
    // Rounds are 100ms. The clean split covers rounds 0..20; the heal
    // fires during round 20's pre-delivery dynamics step.
    let plan = DynamicsPlan::split_then_heal(SimTime::ZERO, SimTime::from_millis(2_050));
    gossip
        .attach_dynamics(plan, SimRng::seed_from_u64(101))
        .expect("valid plan");

    // --- During the partition: the islands' scores diverge.
    gossip.run(20);
    assert!(gossip.dynamics().expect("attached").partition_active());
    let a_mid = gossip.estimate(NodeId(3), 0);
    let b_mid = gossip.estimate(NodeId(25), 0);
    assert!(a_mid > 0.7, "island A converges on its evidence: {a_mid}");
    assert!(
        (b_mid - 0.5).abs() < 0.15,
        "island B is stuck near the prior: {b_mid}"
    );
    assert!(
        (a_mid - b_mid).abs() > 0.2,
        "split-brain divergence: {a_mid} vs {b_mid}"
    );

    // --- After the heal: the same instance reconverges everywhere.
    gossip.run(60);
    assert!(!gossip.dynamics().expect("attached").partition_active());
    let a_end = gossip.estimate(NodeId(3), 0);
    let b_end = gossip.estimate(NodeId(25), 0);
    assert!(
        (a_end - b_end).abs() < 0.1,
        "post-heal reconvergence: {a_end} vs {b_end}"
    );
    assert!(
        b_end > 0.7,
        "island B learned the evidence after the heal: {b_end}"
    );
}

#[test]
fn static_plan_is_bit_identical_to_no_plan() {
    let n = 24;
    let run = |attach_static: bool| {
        let mut gossip = gossip_with_lower_half_evidence(n, 200);
        if attach_static {
            gossip
                .attach_dynamics(DynamicsPlan::default(), SimRng::seed_from_u64(201))
                .expect("valid plan");
        }
        gossip.run(25);
        let report = gossip.report();
        let estimates: Vec<f64> = (0..n)
            .map(|i| gossip.estimate(NodeId::from_index(i), 0))
            .collect();
        (report.mean_error, report.costs, estimates)
    };
    assert_eq!(run(false), run(true), "a static plan must be a no-op");
}

#[test]
fn wan_regions_slow_but_do_not_prevent_convergence() {
    let n = 20;
    let mut gossip = gossip_with_lower_half_evidence(n, 300);
    let plan = DynamicsPlan::wan_regions(
        2,
        SimDuration::from_millis(5),
        SimDuration::from_millis(450),
    );
    gossip
        .attach_dynamics(plan, SimRng::seed_from_u64(301))
        .expect("valid plan");
    gossip.run(80);
    let report = gossip.report();
    assert!(
        report.mean_error < 0.1,
        "cross-region pushes arrive rounds late but mass is conserved: {}",
        report.mean_error
    );
}

#[test]
fn buffer_pool_accounting_survives_1k_churny_rounds() {
    // Kill/revive cycles recycle mailbox and in-flight buffers through
    // every path (death clearing, dead-letter, normal consumption); over
    // 1k rounds a pre-warmed pool must neither leak (fresh allocations
    // beyond the 2n+2 working-set bound) nor double-recycle (free list
    // outgrowing the total ever created).
    let n = 50;
    let mut gossip = gossip_with_lower_half_evidence(n, 400);
    let plan = DynamicsPlan {
        churn: Some(ChurnConfig {
            mean_session: SimDuration::from_millis(500),
            mean_downtime: SimDuration::from_millis(200),
            whitewash_probability: 0.3,
            crash_fraction: 0.5,
        }),
        ..Default::default()
    };
    gossip
        .attach_dynamics(plan, SimRng::seed_from_u64(401))
        .expect("valid plan");

    let pool = gossip.network_mut().pool_mut();
    let prewarmed: Vec<Vec<f64>> = (0..2 * n + 2)
        .map(|_| {
            let mut buf = pool.acquire();
            buf.reserve(1 + 2 * n);
            buf
        })
        .collect();
    for buf in prewarmed {
        pool.release(buf);
    }
    let baseline = pool.fresh_allocations();

    gossip.run(1000);

    let pool = gossip.network_mut().pool();
    assert_eq!(
        baseline,
        pool.fresh_allocations(),
        "1k churny rounds over a pre-warmed pool allocate zero new buffers"
    );
    assert!(pool.reuses() > 1000, "the pool is actually exercised");
    assert!(
        (pool.free_len() as u64) <= pool.fresh_allocations(),
        "free list never exceeds buffers ever created (no double recycle)"
    );
    let report = gossip.report();
    assert!(
        report.mean_error.is_finite(),
        "state stays sound: {report:?}"
    );
}

#[test]
fn scenario_flash_crowd_fills_up_and_stays_sound() {
    let mut recorder = SeriesRecorder::new(["availability"]);
    let outcome = ScenarioBuilder::small()
        .seed(500)
        .rounds(12)
        .flash_crowd()
        .run_observed(&mut [&mut recorder])
        .expect("valid configuration");
    let availability = recorder.series("availability").expect("subscribed");
    assert!(
        availability[0] < 0.5,
        "three quarters start offline: {}",
        availability[0]
    );
    assert!(
        availability.last().copied().expect("12 rounds") > 0.8,
        "the crowd joined: {availability:?}"
    );
    assert!(outcome.facets.validate().is_ok());
    assert!((0.0..=1.0).contains(&outcome.global_trust));
}

#[test]
fn scenario_split_then_heal_confines_interactions_and_reports_health() {
    let outcome = ScenarioBuilder::small()
        .seed(510)
        .rounds(12)
        .split_then_heal(3, 7)
        .run()
        .expect("valid configuration");
    for sample in &outcome.samples {
        let expected = if (3..7).contains(&sample.round) {
            0.5
        } else {
            1.0
        };
        assert_eq!(
            sample.partition_health, expected,
            "round {} health",
            sample.round
        );
    }
    // The partition_health series is observable by name.
    assert_eq!(outcome.series("partition_health").expect("known").len(), 12);
    assert!(outcome.facets.validate().is_ok());
}

#[test]
fn scenario_whitewash_attack_erodes_reputation_power() {
    // Whitewashing sheds bad history: across seeds, the mechanism's
    // measured power (judged against slot-level ground truth) drops
    // relative to the same population without whitewashing.
    let run = |whitewash: bool, seed: u64| {
        let base = ScenarioBuilder::small()
            .seed(seed)
            .rounds(15)
            .malicious_fraction(0.3);
        let base = if whitewash {
            base.whitewash_attack()
        } else {
            base
        };
        base.run().expect("valid configuration")
    };
    let mut washed_power = 0.0;
    let mut clean_power = 0.0;
    let mut washes = 0u64;
    for seed in 520..524 {
        let washed = run(true, seed);
        washes += washed.whitewashes;
        washed_power += washed.facets.reputation;
        clean_power += run(false, seed).facets.reputation;
    }
    assert!(washes > 0, "3-round sessions at 80% whitewash must fire");
    assert!(
        washed_power < clean_power,
        "whitewashing erodes mechanism power: {washed_power} vs {clean_power}"
    );
}

#[test]
fn scenario_with_noop_plan_is_bit_identical_to_no_plan() {
    // Attaching a plan that does nothing — the static default, or a
    // regions-only plan (the abstract engine feels no latency) — must
    // not shift a single RNG draw: outcomes stay bit-identical.
    let fingerprint = |builder: ScenarioBuilder| {
        let o = builder.seed(540).run().expect("valid configuration");
        (
            o.global_trust,
            o.messages,
            o.per_user_trust.clone(),
            o.samples
                .iter()
                .map(|s| (s.mean_trust, s.success_rate, s.reports_filed))
                .collect::<Vec<_>>(),
        )
    };
    let baseline = fingerprint(ScenarioBuilder::small());
    let static_plan = fingerprint(ScenarioBuilder::small().dynamics(DynamicsPlan::default()));
    let regions_only = fingerprint(ScenarioBuilder::small().wan_regions(2));
    assert_eq!(baseline, static_plan, "static plan must be a no-op");
    assert_eq!(baseline, regions_only, "regions-only plan must be a no-op");
}

#[test]
fn scenario_without_dynamics_reports_full_health_series() {
    let outcome = ScenarioBuilder::small().seed(530).run().expect("valid");
    assert_eq!(outcome.whitewashes, 0);
    for sample in &outcome.samples {
        assert_eq!(sample.availability, 1.0);
        assert_eq!(sample.partition_health, 1.0);
    }
}

#[test]
fn detached_scenario_and_protocol_runtime_share_one_schedule() {
    // The scenario's detached execution and the protocol driver's
    // networked execution are the same schedule: same plan, same seed,
    // same events.
    let plan = DynamicsPlan::whitewash_attack(SimDuration::from_secs(2), SimDuration::from_secs(1));
    let n = 16;
    let mut a = DynamicsRuntime::new(plan.clone(), n, SimRng::seed_from_u64(600)).unwrap();
    let mut b = DynamicsRuntime::new(plan, n, SimRng::seed_from_u64(600)).unwrap();
    let mut network = Network::new(NetworkConfig::default(), SimRng::seed_from_u64(601));
    for _ in 0..n {
        network.add_node();
    }
    b.install(&mut network);
    a.advance_detached(SimTime::from_secs(60));
    b.advance(&mut network, SimTime::from_secs(60));
    assert_eq!(a.take_events(), b.take_events());
    assert_eq!(a.identities(), b.identities());
}

#[test]
fn runtime_with_saturated_transitions_terminates_without_spurious_events() {
    // Regression guard for the saturation path: glacial churn means
    // (SimDuration::MAX) make `from_secs_f64` saturate almost every
    // sampled transition onto SimTime::MAX. Those saturated steps must
    // never fire — advancing to the horizon terminates instead of
    // spinning on MAX-timestamped schedule entries, and no event is
    // fabricated at the horizon itself.
    let plan = DynamicsPlan {
        churn: Some(ChurnConfig {
            mean_session: SimDuration::MAX,
            mean_downtime: SimDuration::MAX,
            ..ChurnConfig::default()
        }),
        ..DynamicsPlan::default()
    };
    let mut runtime = DynamicsRuntime::new(plan, 12, SimRng::seed_from_u64(700)).unwrap();
    runtime.advance_detached(SimTime::MAX);
    assert!(
        runtime
            .take_events()
            .iter()
            .all(|&(at, _)| at < SimTime::MAX),
        "no event may fire at the unreachable horizon"
    );
    // Already at the horizon: advancing again is a settled no-op.
    runtime.advance_detached(SimTime::MAX);
    assert_eq!(runtime.take_events(), Vec::new());
    runtime.advance_detached(SimTime::MAX);
    assert_eq!(runtime.take_events(), Vec::new());
}

#[test]
fn partition_window_ending_at_the_horizon_never_heals() {
    // A window with `end == SimTime::MAX` is "partitioned forever":
    // the start boundary fires, the heal never does, and repeatedly
    // advancing at the horizon neither spins nor re-fires the start.
    let plan = DynamicsPlan {
        partitions: vec![PartitionWindow::full_split(
            SimTime::from_secs(10),
            SimTime::MAX,
            2,
        )],
        ..DynamicsPlan::default()
    };
    let mut runtime = DynamicsRuntime::new(plan, 8, SimRng::seed_from_u64(701)).unwrap();
    runtime.advance_detached(SimTime::MAX);
    assert!(runtime.partition_active(), "split must be in effect");
    let fired = runtime.take_events();
    assert_eq!(fired.len(), 1, "exactly the start boundary: {fired:?}");
    runtime.advance_detached(SimTime::MAX);
    assert!(runtime.take_events().is_empty(), "no re-fired boundaries");
    assert!(runtime.partition_active());
}

#[test]
fn saturated_time_arithmetic_is_stable_at_the_horizon() {
    // The service computes epoch boundaries by multiplying out epoch
    // lengths; once anything saturates, every further step must stay
    // pinned at MAX (no wrap, no panic) and durations must stay sane.
    let horizon = SimTime::MAX;
    assert_eq!(horizon.saturating_add(SimDuration::from_secs(1)), horizon);
    assert_eq!(horizon + SimDuration::MAX, horizon);
    assert_eq!(horizon.duration_since(horizon), SimDuration::ZERO);
    assert_eq!(horizon.duration_since(SimTime::ZERO), SimDuration::MAX);
    let near = SimTime::from_micros(u64::MAX - 1);
    assert_eq!(near.saturating_add(SimDuration::from_micros(7)), horizon);
    assert_eq!(horizon.duration_since(near), SimDuration::from_micros(1));
}
