//! Property-based tests on the workspace's core invariants.
//!
//! The build environment has no crates.io access, so instead of
//! `proptest` these use the workspace's own deterministic [`SimRng`] to
//! sample each property over many random cases — same invariants,
//! reproducible counterexamples (the failing case index and inputs are
//! in the assertion message).

use tsn::core::{Aggregator, FacetScores, FacetWeights, TrustMetric};
use tsn::graph::{generators, metrics};
use tsn::privacy::enforcement::RequestContext;
use tsn::privacy::{AccessRequest, DataCategory, Enforcer, Operation, PrivacyPolicy, Purpose};
use tsn::reputation::{
    BetaReputation, DisclosurePolicy, FeedbackReport, InteractionOutcome, ReputationMechanism,
    SelectionPolicy,
};
use tsn::satisfaction::aggregate::{gini_coefficient, GlobalSatisfaction};
use tsn::satisfaction::SatisfactionTracker;
use tsn::simnet::{NodeId, SimRng, SimTime};

const CASES: usize = 128;

fn rng_for(test: u64) -> SimRng {
    SimRng::seed_from_u64(0x5EED_0000 + test)
}

/// Trust is always in [0,1] and monotone in each facet, for every
/// aggregator.
#[test]
fn trust_metric_bounded_and_monotone() {
    let mut rng = rng_for(1);
    let aggregators = [
        Aggregator::Arithmetic,
        Aggregator::Geometric,
        Aggregator::Minimum,
        Aggregator::PowerMean(2.0),
    ];
    for case in 0..CASES {
        let (p, r, s) = (rng.gen_f64(), rng.gen_f64(), rng.gen_f64());
        let bump = 0.01 + rng.gen_f64() * 0.49;
        let aggregator = *rng.choose(&aggregators).unwrap();
        let metric = TrustMetric::new(FacetWeights::default(), aggregator).unwrap();
        let facets = FacetScores::new(p, r, s).unwrap();
        let t = metric.trust(&facets);
        assert!(
            (0.0..=1.0).contains(&t),
            "case {case}: trust {t} out of range"
        );
        // Monotone: bumping any facet never lowers trust.
        for bumped in [
            FacetScores::new((p + bump).min(1.0), r, s).unwrap(),
            FacetScores::new(p, (r + bump).min(1.0), s).unwrap(),
            FacetScores::new(p, r, (s + bump).min(1.0)).unwrap(),
        ] {
            assert!(
                metric.trust(&bumped) >= t - 1e-12,
                "case {case}: bump lowered trust for {aggregator:?} at ({p},{r},{s})"
            );
        }
    }
}

/// Geometric trust never exceeds arithmetic trust (AM–GM), and the
/// minimum lower-bounds the geometric mean.
#[test]
fn am_gm_inequality() {
    let mut rng = rng_for(2);
    let geo = TrustMetric::new(FacetWeights::default(), Aggregator::Geometric).unwrap();
    let ari = TrustMetric::new(FacetWeights::default(), Aggregator::Arithmetic).unwrap();
    let min = TrustMetric::new(FacetWeights::default(), Aggregator::Minimum).unwrap();
    for case in 0..CASES {
        let facets = FacetScores::new(rng.gen_f64(), rng.gen_f64(), rng.gen_f64()).unwrap();
        assert!(
            geo.trust(&facets) <= ari.trust(&facets) + 1e-12,
            "case {case}: AM-GM violated at {facets:?}"
        );
        assert!(
            min.trust(&facets) <= geo.trust(&facets) + 1e-12,
            "case {case}: min above geometric at {facets:?}"
        );
    }
}

/// The disclosure ladder's exposure is strictly monotone and the view
/// never reveals a field the policy withholds.
#[test]
fn disclosure_ladder_monotone_and_sound() {
    let mut rng = rng_for(3);
    for case in 0..CASES {
        let level = rng.gen_range(0..5usize);
        let policy = DisclosurePolicy::ladder(level);
        if level > 0 {
            assert!(
                policy.exposure() > DisclosurePolicy::ladder(level - 1).exposure(),
                "case {case}: exposure not monotone at level {level}"
            );
        }
        let report = FeedbackReport {
            rater: NodeId(rng.gen_range(0..100u32)),
            ratee: NodeId(rng.gen_range(0..100u32)),
            outcome: InteractionOutcome::Success {
                quality: rng.gen_f64(),
            },
            topic: Some(3),
            at: SimTime::from_secs(9),
        };
        let view = policy.view(&report);
        assert_eq!(view.rater.is_some(), policy.rater_identity);
        assert_eq!(view.quality.is_some(), policy.outcome_detail);
        assert_eq!(view.topic.is_some(), policy.topic);
        assert_eq!(view.at.is_some(), policy.timestamp);
        assert_eq!(view.ratee, report.ratee);
    }
}

/// Beta reputation scores stay in (0,1) and equal the exact posterior
/// mean.
#[test]
fn beta_scores_bounded_and_directional() {
    let mut rng = rng_for(4);
    for case in 0..CASES {
        let good = rng.gen_range(0..40u32);
        let bad = rng.gen_range(0..40u32);
        let mut m = BetaReputation::new(2).without_credibility_weighting();
        let full = DisclosurePolicy::full();
        for _ in 0..good {
            m.record(&full.view(&FeedbackReport {
                rater: NodeId(0),
                ratee: NodeId(1),
                outcome: InteractionOutcome::Success { quality: 1.0 },
                topic: None,
                at: SimTime::ZERO,
            }));
        }
        for _ in 0..bad {
            m.record(&full.view(&FeedbackReport {
                rater: NodeId(0),
                ratee: NodeId(1),
                outcome: InteractionOutcome::Failure,
                topic: None,
                at: SimTime::ZERO,
            }));
        }
        let s = m.score(NodeId(1));
        assert!(s > 0.0 && s < 1.0, "case {case}: score {s} out of (0,1)");
        let expected = (good as f64 + 1.0) / ((good + bad) as f64 + 2.0);
        assert!(
            (s - expected).abs() < 1e-9,
            "case {case}: {good}+/{bad}- gave {s}, expected {expected}"
        );
    }
}

/// Selection policies always pick a member of the candidate set.
#[test]
fn selection_always_picks_a_candidate() {
    let mut rng = rng_for(5);
    for case in 0..CASES {
        let k = rng.gen_range(1..20usize);
        let candidates: Vec<NodeId> = (0..k as u32).map(NodeId).collect();
        let policy = *rng.choose(&SelectionPolicy::SWEEP).unwrap();
        let chosen = policy
            .select(
                &candidates,
                |n| (n.0 as f64 + 1.0) / (k as f64 + 1.0),
                &mut rng,
            )
            .unwrap();
        assert!(
            candidates.contains(&chosen),
            "case {case}: {chosen:?} not a candidate"
        );
    }
}

/// Graph generators produce simple graphs with consistent degree
/// accounting, and BFS distances satisfy the triangle property along
/// edges.
#[test]
fn graph_invariants() {
    let mut rng = rng_for(6);
    for case in 0..24 {
        let n = rng.gen_range(10..60usize);
        let m = rng.gen_range(1..4usize);
        let g = generators::barabasi_albert(n, m, &mut rng).unwrap();
        // Handshake lemma.
        let degree_sum: usize = metrics::degree_sequence(&g).iter().sum();
        assert_eq!(degree_sum, 2 * g.edge_count(), "case {case}");
        // No self-loops, symmetric adjacency.
        for v in g.nodes() {
            assert!(!g.has_edge(v, v), "case {case}: self-loop at {v:?}");
            for &u in g.neighbors(v) {
                assert!(
                    g.has_edge(u, v),
                    "case {case}: asymmetric edge {v:?}->{u:?}"
                );
            }
        }
        // BFS: adjacent nodes' distances differ by at most 1.
        let dist = g.bfs_distances(NodeId(0));
        for (a, b) in g.edges() {
            if let (Some(da), Some(db)) = (dist[a.index()], dist[b.index()]) {
                assert!(da.abs_diff(db) <= 1, "case {case}: BFS triangle violated");
            }
        }
    }
}

/// Watts–Strogatz keeps the edge count invariant under rewiring.
#[test]
fn ws_rewiring_preserves_edges() {
    let mut rng = rng_for(7);
    for case in 0..32 {
        let beta = rng.gen_f64();
        let g = generators::watts_strogatz(40, 6, beta, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 40 * 6 / 2, "case {case} at beta {beta}");
        assert!(g.nodes().all(|v| g.degree(v) < 40), "case {case}");
    }
}

/// Satisfaction trackers remain in [0,1] under arbitrary inputs and
/// count every observation.
#[test]
fn satisfaction_tracker_bounded() {
    let mut rng = rng_for(8);
    for case in 0..CASES {
        let rate = 0.01 + rng.gen_f64() * 0.99;
        let len = rng.gen_range(1..200usize);
        let mut t = SatisfactionTracker::new(rate);
        for _ in 0..len {
            t.observe(rng.gen_f64());
            assert!(
                (0.0..=1.0).contains(&t.satisfaction()),
                "case {case}: satisfaction escaped [0,1]"
            );
        }
        assert_eq!(t.observations(), len as u64, "case {case}");
    }
}

/// Gini is in [0,1) and zero for constant populations; Jain in (0,1];
/// fairness discount never exceeds the mean.
#[test]
fn fairness_measures_bounded() {
    let mut rng = rng_for(9);
    for case in 0..CASES {
        let len = rng.gen_range(1..100usize);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_f64()).collect();
        let gini = gini_coefficient(&values);
        assert!(
            (0.0..1.0).contains(&gini) || gini.abs() < 1e-9,
            "case {case}: gini {gini} out of range"
        );
        let g = GlobalSatisfaction::from_values(&values).unwrap();
        assert!(
            g.jain_index > 0.0 && g.jain_index <= 1.0 + 1e-12,
            "case {case}"
        );
        assert!(g.fairness_discounted() <= g.mean + 1e-12, "case {case}");
        assert!(g.min <= g.mean + 1e-12, "case {case}");
    }
}

/// Enforcement soundness: a grant implies every policy clause was
/// satisfied.
#[test]
fn enforcement_grants_are_sound() {
    let mut rng = rng_for(10);
    for case in 0..CASES {
        let distance = if rng.gen_bool(0.2) {
            None
        } else {
            Some(rng.gen_range(1..6u32))
        };
        let trust = rng.gen_f64();
        let min_trust = rng.gen_f64();
        let friends_only = rng.gen_bool(0.5);
        let mut builder = PrivacyPolicy::builder(DataCategory::Content)
            .allow_operations([Operation::Read])
            .allow_purposes([Purpose::Social])
            .min_trust_level(min_trust);
        if friends_only {
            builder = builder.condition(tsn::privacy::AccessCondition::FriendsOnly);
        }
        let policy = builder.build().unwrap();
        let request = AccessRequest {
            requester: NodeId(1),
            owner: NodeId(0),
            operation: Operation::Read,
            purpose: Purpose::Social,
        };
        let ctx = RequestContext {
            social_distance: distance,
            requester_trust: trust,
        };
        let decision = Enforcer::new().decide(&request, &policy, &ctx);
        if decision.is_granted() {
            assert!(trust >= min_trust, "case {case}: granted below min trust");
            if friends_only {
                assert_eq!(distance, Some(1), "case {case}: granted beyond friends");
            }
        }
    }
}

/// Deterministic replay: the same seed gives the same RNG stream
/// through fork trees.
#[test]
fn rng_fork_determinism() {
    let mut rng = rng_for(11);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let label = rng.next_u64();
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        let mut fa = a.fork(label);
        let mut fb = b.fork(label);
        for _ in 0..8 {
            assert_eq!(fa.next_u64(), fb.next_u64(), "case {case}: fork diverged");
        }
    }
}

/// Power-mean trust always lies between the weakest and strongest facet
/// (generalized-mean bounds).
#[test]
fn power_mean_respects_bounds() {
    let mut rng = rng_for(12);
    let exponents = [-4.0, -1.0, 0.5, 1.0, 3.0];
    for case in 0..CASES {
        let (p, r, s) = (rng.gen_f64(), rng.gen_f64(), rng.gen_f64());
        let exponent = *rng.choose(&exponents).unwrap();
        let facets = FacetScores::new(p, r, s).unwrap();
        let metric =
            TrustMetric::new(FacetWeights::default(), Aggregator::PowerMean(exponent)).unwrap();
        let t = metric.trust(&facets);
        let lo = p.min(r).min(s);
        let hi = p.max(r).max(s);
        assert!(
            t >= lo - 1e-9,
            "case {case}: trust {t} below min facet {lo}"
        );
        assert!(
            t <= hi + 1e-9,
            "case {case}: trust {t} above max facet {hi}"
        );
    }
}

/// Contiguous group maps partition the node range completely.
#[test]
fn group_map_partitions_everything() {
    use tsn::simnet::GroupMap;
    let mut rng = rng_for(13);
    for case in 0..CASES {
        let n = rng.gen_range(1..200usize);
        let k = rng.gen_range(1..10usize);
        let map = GroupMap::contiguous(n, k);
        assert_eq!(map.len(), n, "case {case}");
        for i in 0..n {
            let g = map.group(NodeId::from_index(i));
            assert!(usize::from(g) < k.min(n).max(1) + 1, "case {case}");
        }
        for i in 0..n.min(20) {
            let a = NodeId::from_index(i);
            assert!(map.same_group(a, a), "case {case}");
        }
    }
}

/// Retention compliance rate is always in [0, 1] and total resolved
/// copies are conserved.
#[test]
fn retention_accounting_conserves() {
    use tsn::privacy::RetentionTracker;
    use tsn::simnet::SimDuration;
    let mut rng = rng_for(14);
    for case in 0..CASES {
        let grants = rng.gen_range(1..30usize);
        let delete_at = rng.gen_range(0..200u64);
        let retention_secs = rng.gen_range(1..100u64);
        let policy = PrivacyPolicy::builder(DataCategory::Content)
            .retention(SimDuration::from_secs(retention_secs))
            .build()
            .unwrap();
        let mut tracker = RetentionTracker::new();
        for holder in 0..grants {
            tracker.grant(
                NodeId(0),
                NodeId::from_index(holder + 1),
                &policy,
                SimTime::ZERO,
            );
        }
        assert_eq!(tracker.live_copies(), grants, "case {case}");
        // Half the holders delete; the rest are swept.
        for holder in 0..grants / 2 {
            tracker.delete(
                NodeId::from_index(holder + 1),
                NodeId(0),
                SimTime::from_secs(delete_at),
            );
        }
        tracker.sweep_expired(SimTime::from_secs(500), |_| false);
        assert_eq!(tracker.live_copies(), 0, "case {case}");
        let rate = tracker.compliance_rate();
        assert!((0.0..=1.0).contains(&rate), "case {case}: rate {rate}");
    }
}

/// The O(n log n) balanced-detection-accuracy sweep is bit-identical to
/// a naive O(n²) per-threshold rescan — on random inputs with heavy
/// ties, signed zeros, infinities and NaN scores. (A NaN score can
/// never satisfy `score <= threshold`, so NaN samples always count on
/// the unflagged side — the reference spells that semantics out with
/// plain comparisons.)
#[test]
fn detection_accuracy_matches_naive_rescan_with_nan_and_ties() {
    use tsn::reputation::accuracy::balanced_detection_accuracy;

    fn naive(scores: &[f64], adversarial: &[bool]) -> f64 {
        let positives = adversarial.iter().filter(|&&a| a).count();
        let negatives = adversarial.len() - positives;
        if positives == 0 || negatives == 0 {
            return 0.5;
        }
        let mut thresholds: Vec<f64> = scores.iter().copied().filter(|s| !s.is_nan()).collect();
        thresholds.sort_by(f64::total_cmp);
        thresholds.dedup_by(|a, b| a == b); // -0.0 == 0.0: one threshold
        let mut best: f64 = 0.5;
        for &t in &thresholds {
            let tp = scores
                .iter()
                .zip(adversarial)
                .filter(|&(s, &adv)| adv && *s <= t)
                .count();
            let tn = scores
                .iter()
                .zip(adversarial)
                // "not flagged" = not (score <= t); spelled via
                // partial_cmp so the NaN case (incomparable → not
                // flagged) is explicit.
                .filter(|&(s, &adv)| {
                    !adv && !matches!(
                        s.partial_cmp(&t),
                        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                    )
                })
                .count();
            let bal = (tp as f64 / positives as f64 + tn as f64 / negatives as f64) / 2.0;
            best = best.max(bal);
        }
        best
    }

    let mut rng = rng_for(17);
    for case in 0..CASES {
        let n = 2 + (case % 37);
        let scores: Vec<f64> = (0..n)
            .map(|_| match rng.gen_range(0..12u32) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                4 => 0.0,
                // Coarse quantization forces heavy ties.
                _ => (rng.gen_range(0..6u32) as f64) / 6.0,
            })
            .collect();
        let adversarial: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.35)).collect();
        let fast = balanced_detection_accuracy(&scores, &adversarial);
        let slow = naive(&scores, &adversarial);
        assert_eq!(
            fast.to_bits(),
            slow.to_bits(),
            "case {case}: scores {scores:?} adversarial {adversarial:?}"
        );
        assert!((0.5..=1.0).contains(&fast), "case {case}: {fast}");
    }

    // All-NaN scores: no thresholds at all, chance accuracy.
    assert_eq!(
        balanced_detection_accuracy(&[f64::NAN, f64::NAN], &[true, false]),
        0.5
    );
}

/// Membership view invariants survive arbitrary churn and partitions:
/// no view ever holds its owner or a duplicate peer, never exceeds its
/// capacity, and entry ages stay bounded by the worst-case travel chain
/// (one aging step at the holder plus one per exchange hop, of which a
/// round has at most n).
#[test]
fn membership_views_keep_invariants_under_random_churn() {
    use tsn::simnet::{GroupMap, MembershipConfig, MembershipRuntime, NodeId};

    let mut rng = rng_for(23);
    for case in 0..24 {
        let n = 8 + rng.gen_range(0..56u32) as usize;
        let view_size = 2 + rng.gen_range(0..10u32) as usize;
        let shuffle_len = 1 + rng.gen_range(0..view_size as u32) as usize;
        let healing = rng.gen_range(0..(shuffle_len + 1) as u32) as usize;
        let config = MembershipConfig {
            view_size,
            shuffle_len,
            healing,
            swap: shuffle_len - healing,
            relays: 1 + rng.gen_range(0..(n.min(4)) as u32) as usize,
            relay_fanout: 1 + rng.gen_range(0..view_size as u32) as usize,
        };
        config.validate().expect("generated config in-range");
        let mut runtime =
            MembershipRuntime::new(n, config, 0xC0FFEE ^ case).expect("valid runtime");
        let rounds = 1 + rng.gen_range(0..40u32) as u64;
        for round in 0..rounds {
            // Random liveness each round; a coin-flip two-group
            // partition half the time.
            let alive: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.8)).collect();
            let partitioned = rng.gen_bool(0.5);
            let groups: Vec<u16> = (0..n).map(|_| rng.gen_range(0..2u32) as u16).collect();
            let map = GroupMap::new(groups);
            runtime.shuffle_round(
                |p| alive[p.index()],
                |a, b| !partitioned || map.same_group(a, b),
            );
            for owner in 0..n {
                let view = runtime.view(NodeId::from_index(owner));
                assert!(view.len() <= view_size, "case {case}: over capacity");
                let mut seen = vec![false; n];
                for entry in view.entries() {
                    assert_ne!(
                        entry.peer.index(),
                        owner,
                        "case {case}: view holds its owner"
                    );
                    assert!(
                        !seen[entry.peer.index()],
                        "case {case}: duplicate peer in view"
                    );
                    seen[entry.peer.index()] = true;
                    assert!(
                        u64::from(entry.age) <= (round + 1) * (n as u64 + 1),
                        "case {case}: age {} after {} rounds of {} exchanges",
                        entry.age,
                        round + 1,
                        n
                    );
                }
            }
        }
    }
}
