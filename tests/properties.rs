//! Property-based tests (proptest) on the workspace's core invariants.

use proptest::prelude::*;
use tsn::core::{Aggregator, FacetScores, FacetWeights, TrustMetric};
use tsn::graph::{generators, metrics, Graph};
use tsn::privacy::enforcement::RequestContext;
use tsn::privacy::{AccessRequest, DataCategory, Enforcer, Operation, PrivacyPolicy, Purpose};
use tsn::reputation::{
    BetaReputation, DisclosurePolicy, FeedbackReport, InteractionOutcome, ReputationMechanism,
    SelectionPolicy,
};
use tsn::satisfaction::aggregate::{gini_coefficient, GlobalSatisfaction};
use tsn::satisfaction::SatisfactionTracker;
use tsn::simnet::{NodeId, SimRng, SimTime};

fn facet() -> impl Strategy<Value = f64> {
    0.0..=1.0f64
}

proptest! {
    /// Trust is always in [0,1] and monotone in each facet, for every
    /// aggregator.
    #[test]
    fn trust_metric_bounded_and_monotone(
        p in facet(), r in facet(), s in facet(),
        bump in 0.01..0.5f64,
        agg_idx in 0usize..4,
    ) {
        let aggregator = [
            Aggregator::Arithmetic,
            Aggregator::Geometric,
            Aggregator::Minimum,
            Aggregator::PowerMean(2.0),
        ][agg_idx];
        let metric = TrustMetric::new(FacetWeights::default(), aggregator).unwrap();
        let facets = FacetScores::new(p, r, s).unwrap();
        let t = metric.trust(&facets);
        prop_assert!((0.0..=1.0).contains(&t));
        // Monotone: bumping any facet never lowers trust.
        let bumped = FacetScores::new((p + bump).min(1.0), r, s).unwrap();
        prop_assert!(metric.trust(&bumped) >= t - 1e-12);
        let bumped = FacetScores::new(p, (r + bump).min(1.0), s).unwrap();
        prop_assert!(metric.trust(&bumped) >= t - 1e-12);
        let bumped = FacetScores::new(p, r, (s + bump).min(1.0)).unwrap();
        prop_assert!(metric.trust(&bumped) >= t - 1e-12);
    }

    /// Geometric trust never exceeds arithmetic trust (AM–GM).
    #[test]
    fn am_gm_inequality(p in facet(), r in facet(), s in facet()) {
        let facets = FacetScores::new(p, r, s).unwrap();
        let geo = TrustMetric::new(FacetWeights::default(), Aggregator::Geometric).unwrap();
        let ari = TrustMetric::new(FacetWeights::default(), Aggregator::Arithmetic).unwrap();
        prop_assert!(geo.trust(&facets) <= ari.trust(&facets) + 1e-12);
        // And the minimum lower-bounds the geometric mean.
        let min = TrustMetric::new(FacetWeights::default(), Aggregator::Minimum).unwrap();
        prop_assert!(min.trust(&facets) <= geo.trust(&facets) + 1e-12);
    }

    /// The disclosure ladder's exposure is strictly monotone and the view
    /// never reveals a field the policy withholds.
    #[test]
    fn disclosure_ladder_monotone_and_sound(
        level in 0usize..5,
        rater in 0u32..100,
        ratee in 0u32..100,
        quality in facet(),
    ) {
        let policy = DisclosurePolicy::ladder(level);
        if level > 0 {
            prop_assert!(policy.exposure() > DisclosurePolicy::ladder(level - 1).exposure());
        }
        let report = FeedbackReport {
            rater: NodeId(rater),
            ratee: NodeId(ratee),
            outcome: InteractionOutcome::Success { quality },
            topic: Some(3),
            at: SimTime::from_secs(9),
        };
        let view = policy.view(&report);
        prop_assert_eq!(view.rater.is_some(), policy.rater_identity);
        prop_assert_eq!(view.quality.is_some(), policy.outcome_detail);
        prop_assert_eq!(view.topic.is_some(), policy.topic);
        prop_assert_eq!(view.at.is_some(), policy.timestamp);
        prop_assert_eq!(view.ratee, NodeId(ratee));
    }

    /// Beta reputation scores stay in (0,1) and respond in the right
    /// direction to feedback.
    #[test]
    fn beta_scores_bounded_and_directional(
        good in 0u32..40,
        bad in 0u32..40,
    ) {
        let mut m = BetaReputation::new(2).without_credibility_weighting();
        let full = DisclosurePolicy::full();
        for _ in 0..good {
            m.record(&full.view(&FeedbackReport {
                rater: NodeId(0), ratee: NodeId(1),
                outcome: InteractionOutcome::Success { quality: 1.0 },
                topic: None, at: SimTime::ZERO,
            }));
        }
        for _ in 0..bad {
            m.record(&full.view(&FeedbackReport {
                rater: NodeId(0), ratee: NodeId(1),
                outcome: InteractionOutcome::Failure,
                topic: None, at: SimTime::ZERO,
            }));
        }
        let s = m.score(NodeId(1));
        prop_assert!(s > 0.0 && s < 1.0);
        // Exact posterior mean.
        let expected = (good as f64 + 1.0) / ((good + bad) as f64 + 2.0);
        prop_assert!((s - expected).abs() < 1e-9);
    }

    /// Selection policies always pick a member of the candidate set.
    #[test]
    fn selection_always_picks_a_candidate(
        seed in 0u64..1000,
        k in 1usize..20,
        policy_idx in 0usize..4,
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let candidates: Vec<NodeId> = (0..k as u32).map(NodeId).collect();
        let policy = SelectionPolicy::SWEEP[policy_idx];
        let chosen = policy
            .select(&candidates, |n| (n.0 as f64 + 1.0) / (k as f64 + 1.0), &mut rng)
            .unwrap();
        prop_assert!(candidates.contains(&chosen));
    }

    /// Graph generators produce simple graphs with consistent degree
    /// accounting, and BFS distances satisfy the triangle property along
    /// edges.
    #[test]
    fn graph_invariants(seed in 0u64..500, n in 10usize..60, m in 1usize..4) {
        let mut rng = SimRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(n, m, &mut rng).unwrap();
        // Handshake lemma.
        let degree_sum: usize = metrics::degree_sequence(&g).iter().sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        // No self-loops, symmetric adjacency.
        for v in g.nodes() {
            prop_assert!(!g.has_edge(v, v));
            for &u in g.neighbors(v) {
                prop_assert!(g.has_edge(u, v));
            }
        }
        // BFS: adjacent nodes' distances differ by at most 1.
        let dist = g.bfs_distances(NodeId(0));
        for (a, b) in g.edges() {
            if let (Some(da), Some(db)) = (dist[a.index()], dist[b.index()]) {
                prop_assert!(da.abs_diff(db) <= 1);
            }
        }
    }

    /// Watts–Strogatz keeps the edge count invariant under rewiring.
    #[test]
    fn ws_rewiring_preserves_edges(seed in 0u64..200, beta in 0.0..1.0f64) {
        let mut rng = SimRng::seed_from_u64(seed);
        let g = generators::watts_strogatz(40, 6, beta, &mut rng).unwrap();
        prop_assert_eq!(g.edge_count(), 40 * 6 / 2);
        prop_assert!(g.nodes().all(|v| g.degree(v) < 40));
    }

    /// Satisfaction trackers remain in [0,1] under arbitrary inputs and
    /// converge toward sustained adequacy.
    #[test]
    fn satisfaction_tracker_bounded(
        adequacies in prop::collection::vec(0.0..=1.0f64, 1..200),
        rate in 0.01..1.0f64,
    ) {
        let mut t = SatisfactionTracker::new(rate);
        for &a in &adequacies {
            t.observe(a);
            prop_assert!((0.0..=1.0).contains(&t.satisfaction()));
        }
        prop_assert_eq!(t.observations(), adequacies.len() as u64);
    }

    /// Gini is in [0,1) and zero for constant populations; Jain in
    /// (0,1]; fairness discount never exceeds the mean.
    #[test]
    fn fairness_measures_bounded(values in prop::collection::vec(0.0..=1.0f64, 1..100)) {
        let gini = gini_coefficient(&values);
        prop_assert!((0.0..1.0).contains(&gini) || gini.abs() < 1e-9);
        let g = GlobalSatisfaction::from_values(&values).unwrap();
        prop_assert!(g.jain_index > 0.0 && g.jain_index <= 1.0 + 1e-12);
        prop_assert!(g.fairness_discounted() <= g.mean + 1e-12);
        prop_assert!(g.min <= g.mean + 1e-12);
    }

    /// Enforcement soundness: a grant implies every policy clause was
    /// satisfied.
    #[test]
    fn enforcement_grants_are_sound(
        distance in prop::option::of(1u32..6),
        trust in facet(),
        min_trust in facet(),
        friends_only in any::<bool>(),
    ) {
        let mut builder = PrivacyPolicy::builder(DataCategory::Content)
            .allow_operations([Operation::Read])
            .allow_purposes([Purpose::Social])
            .min_trust_level(min_trust);
        if friends_only {
            builder = builder.condition(tsn::privacy::AccessCondition::FriendsOnly);
        }
        let policy = builder.build().unwrap();
        let request = AccessRequest {
            requester: NodeId(1),
            owner: NodeId(0),
            operation: Operation::Read,
            purpose: Purpose::Social,
        };
        let ctx = RequestContext { social_distance: distance, requester_trust: trust };
        let decision = Enforcer::new().decide(&request, &policy, &ctx);
        if decision.is_granted() {
            prop_assert!(trust >= min_trust);
            if friends_only {
                prop_assert_eq!(distance, Some(1));
            }
        }
    }

    /// Deterministic replay: the same seed gives the same RNG stream
    /// through fork trees.
    #[test]
    fn rng_fork_determinism(seed in any::<u64>(), label in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        let mut fa = a.fork(label);
        let mut fb = b.fork(label);
        for _ in 0..8 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    /// Power-mean trust always lies between the weakest and strongest
    /// facet (generalized-mean bounds).
    #[test]
    fn power_mean_respects_bounds(
        p in facet(), r in facet(), s in facet(),
        exponent in prop::sample::select(vec![-4.0, -1.0, 0.5, 1.0, 3.0]),
    ) {
        let facets = FacetScores::new(p, r, s).unwrap();
        let metric =
            TrustMetric::new(FacetWeights::default(), Aggregator::PowerMean(exponent)).unwrap();
        let t = metric.trust(&facets);
        let lo = p.min(r).min(s);
        let hi = p.max(r).max(s);
        prop_assert!(t >= lo - 1e-9, "trust {t} below min facet {lo}");
        prop_assert!(t <= hi + 1e-9, "trust {t} above max facet {hi}");
    }

    /// Contiguous group maps partition the node range completely and
    /// evenly (sizes differ by at most one... by construction, by at most
    /// the remainder block).
    #[test]
    fn group_map_partitions_everything(n in 1usize..200, k in 1usize..10) {
        use tsn::simnet::GroupMap;
        let map = GroupMap::contiguous(n, k);
        prop_assert_eq!(map.len(), n);
        for i in 0..n {
            let g = map.group(NodeId::from_index(i));
            prop_assert!(usize::from(g) < k.min(n).max(1) + 1);
        }
        // Same-group is an equivalence relation on assigned nodes.
        for i in 0..n.min(20) {
            let a = NodeId::from_index(i);
            prop_assert!(map.same_group(a, a));
        }
    }

    /// Retention compliance rate is always in [0, 1] and total resolved
    /// copies are conserved.
    #[test]
    fn retention_accounting_conserves(
        grants in 1usize..30,
        delete_at in 0u64..200,
        retention_secs in 1u64..100,
    ) {
        use tsn::privacy::RetentionTracker;
        use tsn::privacy::{DataCategory, PrivacyPolicy};
        use tsn::simnet::{SimDuration, SimTime};
        let policy = PrivacyPolicy::builder(DataCategory::Content)
            .retention(SimDuration::from_secs(retention_secs))
            .build()
            .unwrap();
        let mut tracker = RetentionTracker::new();
        for holder in 0..grants {
            tracker.grant(
                NodeId(0),
                NodeId::from_index(holder + 1),
                &policy,
                SimTime::ZERO,
            );
        }
        prop_assert_eq!(tracker.live_copies(), grants);
        // Half the holders delete; the rest are swept.
        for holder in 0..grants / 2 {
            tracker.delete(NodeId::from_index(holder + 1), NodeId(0), SimTime::from_secs(delete_at));
        }
        tracker.sweep_expired(SimTime::from_secs(500), |_| false);
        prop_assert_eq!(tracker.live_copies(), 0);
        let rate = tracker.compliance_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
    }
}
