//! Replication torture: failover is invisible.
//!
//! The contracts pinned here:
//!
//! 1. **Kill-primary → promote → continue == uninterrupted**, bit for
//!    bit, for every crash-point class — an epoch boundary, mid-epoch
//!    with staged events, mid-partition-window, and a torn
//!    mid-journal-write on the primary's own storage. A client of the
//!    set never observes the outage: scores, samples, stats, and the
//!    checkpoint bytes the promoted primary would write are identical
//!    to a single host that never crashed.
//! 2. **The faulted run replays bit for bit.** The same
//!    `(FaultPlan, seed)` reproduces the same promotions (same
//!    `FailoverReport`s, same timestamps) and the same final state.
//! 3. **Recovery replay cost is bounded by checkpoint age, not service
//!    age**: a restart opens only the journal-segment suffix past the
//!    restored checkpoint's cursor, however long the host has run.

use tsn::prelude::*;
use tsn::service::{EpochSample, FailoverReport, ReplicaConfig, ReplicaSet, ServiceStats};

/// One step of a timeline: an op at its own timestamp, or an explicit
/// clock advance (the epoch-boundary commit).
#[derive(Debug, Clone, Copy)]
enum Action {
    Op(ServiceOp),
    Advance(SimTime),
}

impl Action {
    fn at(&self) -> SimTime {
        match *self {
            Action::Op(op) => op.at(),
            Action::Advance(at) => at,
        }
    }

    fn run_host(&self, host: &mut ServiceHost) {
        match *self {
            Action::Op(op) => {
                host.apply(&op).expect("workload ops are valid");
            }
            Action::Advance(at) => host.advance_to(at).expect("advance is valid"),
        }
    }

    fn run_set(&self, set: &mut ReplicaSet) {
        match *self {
            Action::Op(op) => {
                set.apply(&op).expect("a live set acknowledges every op");
            }
            Action::Advance(at) => set.advance_to(at).expect("advance is valid"),
        }
    }
}

/// Everything a client of the set can observe, bit-exact — including
/// the checkpoint bytes the serving service would persist.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    now_us: u64,
    epoch: u64,
    staged: usize,
    stats: ServiceStats,
    samples: Vec<EpochSample>,
    score_bits: Vec<u64>,
    checkpoint: Option<Vec<u8>>,
}

fn fingerprint(service: &TrustService) -> Fingerprint {
    Fingerprint {
        now_us: service.now().as_micros(),
        epoch: service.epoch_index(),
        staged: service.staged_len(),
        stats: service.stats(),
        samples: service.samples().to_vec(),
        score_bits: service.scores().iter().map(|s| s.to_bits()).collect(),
        checkpoint: service.checkpoint().ok(),
    }
}

/// The same 3-epoch workload over 30 nodes as `tests/faults.rs`, with a
/// partition window open inside epoch 1 (70 s – 110 s on a 60 s epoch).
fn torture_setup() -> (ReplicaConfig, Vec<Action>) {
    let nodes = 30;
    let epochs = 3u64;
    let driver = ServiceDriver::new(DriverConfig {
        nodes,
        arrival_rate: 2.0,
        disclosure_rate: 0.25,
        query_rate: 0.4,
        malicious_fraction: 0.2,
        seed: 11,
        membership: None,
    })
    .expect("valid driver");
    let service = ServiceConfig {
        nodes,
        epoch: SimDuration::from_secs(60),
        partitions: vec![PartitionWindow::full_split(
            SimTime::from_secs(70),
            SimTime::from_secs(110),
            2,
        )],
        ..ServiceConfig::default()
    };
    let config = ReplicaConfig {
        host: HostConfig {
            service: service.clone(),
            journal: true,
            checkpoint_every_epochs: 1,
            retain_checkpoints: 2,
            recovery_grace: SimDuration::ZERO,
            ..HostConfig::default()
        },
        replicas: 3,
    };
    let probe = TrustService::new(service).expect("valid service");
    let mut actions = Vec::new();
    for epoch in 0..epochs {
        for op in driver.ops_for_epoch(&probe, epoch) {
            actions.push(Action::Op(op));
        }
        actions.push(Action::Advance(probe.epoch_end(epoch)));
    }
    (config, actions)
}

/// A single host that never crashes, over the same timeline.
fn reference_run(config: &ReplicaConfig, actions: &[Action]) -> Fingerprint {
    let mut host = ServiceHost::new(config.host.clone()).expect("valid host");
    for action in actions {
        action.run_host(&mut host);
    }
    fingerprint(host.service().expect("reference host never crashes"))
}

/// Runs the whole timeline through a set whose primary (replica 0) is
/// killed at `crash_at` by a fault plan, returning the final
/// fingerprint and the promotions that happened.
fn killed_primary_run(
    config: &ReplicaConfig,
    actions: &[Action],
    crash_at: SimTime,
) -> (Fingerprint, Vec<FailoverReport>) {
    let mut set = ReplicaSet::new(config.clone()).expect("valid set");
    set.attach_faults(
        FaultInjector::new(
            FaultPlan::replica_crash(0, crash_at, SimDuration::from_secs(20)),
            11,
        )
        .expect("valid plan"),
    );
    for action in actions {
        action.run_set(&mut set);
    }
    let print = fingerprint(set.primary_service().expect("set ends serving"));
    (print, set.failovers().to_vec())
}

/// Contract 1, clean crash classes: the primary dies at an epoch
/// boundary, mid-partition-window, and mid-epoch with staged events;
/// every class promotes exactly once and stays bit-identical to the
/// uninterrupted single host.
#[test]
fn killed_primary_is_invisible_at_every_crash_class() {
    let (config, actions) = torture_setup();
    let reference = reference_run(&config, &actions);
    let crash_points = [
        SimTime::from_secs(60),  // exactly the epoch boundary
        SimTime::from_secs(90),  // mid-partition-window
        SimTime::from_secs(150), // mid-epoch 2, staged events
    ];
    for crash_at in crash_points {
        let (promoted, failovers) = killed_primary_run(&config, &actions, crash_at);
        assert_eq!(
            failovers.len(),
            1,
            "one crash, one promotion (crash at {crash_at:?}): {failovers:?}"
        );
        assert_eq!(failovers[0].from, 0, "replica 0 was the primary");
        assert_ne!(failovers[0].to, 0, "promotion picks a live follower");
        assert!(
            failovers[0].at >= crash_at,
            "promotion happens at or after the crash"
        );
        assert_eq!(
            promoted, reference,
            "failover diverged from the uninterrupted run for a crash at {crash_at:?}"
        );
    }
}

/// Contract 1, torn mid-journal-write: the primary dies halfway through
/// appending an acknowledged entry to its own journal. The entry is in
/// the replicated log, so nothing is lost and no client retry is
/// needed — the set's state stays bit-identical.
#[test]
fn torn_primary_write_is_invisible_without_a_client_retry() {
    let (config, actions) = torture_setup();
    let reference = reference_run(&config, &actions);
    let len = actions.len();
    for i in [len / 5, len / 2, 4 * len / 5] {
        let mut set = ReplicaSet::new(config.clone()).expect("valid set");
        let mut torn = false;
        for (idx, action) in actions.iter().enumerate() {
            action.run_set(&mut set);
            if idx == i {
                set.crash_primary_torn(action.at());
                torn = true;
            }
        }
        assert!(torn, "the torn crash point must land inside the run");
        assert_eq!(set.failovers().len(), 1, "the torn crash promotes once");
        let promoted = fingerprint(set.primary_service().expect("set ends serving"));
        assert_eq!(
            promoted, reference,
            "torn-primary failover diverged after action {i}"
        );
    }
}

/// Contract 2: the same `(FaultPlan, seed)` replays the same crashes,
/// the same promotions (reports and all), and the same final state,
/// bit for bit.
#[test]
fn faulted_replicated_runs_replay_bit_for_bit() {
    let (config, actions) = torture_setup();
    let crash_at = SimTime::from_secs(90);
    let (first, first_failovers) = killed_primary_run(&config, &actions, crash_at);
    let (second, second_failovers) = killed_primary_run(&config, &actions, crash_at);
    assert_eq!(
        first_failovers, second_failovers,
        "the same plan must replay the same promotions"
    );
    assert_eq!(first, second, "replayed runs must be bit-identical");
}

/// A healthy set (no faults) converges every epoch and never retains
/// more of the log than the newest entry.
#[test]
fn a_healthy_set_stays_in_lockstep_and_compacts_its_log() {
    let (config, actions) = torture_setup();
    let reference = reference_run(&config, &actions);
    let mut set = ReplicaSet::new(config).expect("valid set");
    for action in &actions {
        action.run_set(&mut set);
        assert!(
            set.retained_log_len() <= 1,
            "an in-sync set keeps at most the newest entry for torn re-delivery"
        );
    }
    assert!(set.failovers().is_empty(), "no faults, no promotions");
    for (i, host) in set.hosts().iter().enumerate() {
        let print = fingerprint(host.service().expect("all members up"));
        assert_eq!(print, reference, "member {i} diverged from the reference");
    }
}

/// Contract 3: recovery opens only the journal-segment suffix past the
/// restored checkpoint's cursor. Tripling the service's age triples the
/// segments ever written but leaves the restart's segment-open count
/// flat — the bound is the checkpoint cadence, not the uptime.
#[test]
fn recovery_opens_a_bounded_segment_suffix_regardless_of_age() {
    let driver = ServiceDriver::new(DriverConfig {
        nodes: 30,
        arrival_rate: 2.0,
        disclosure_rate: 0.25,
        query_rate: 0.4,
        malicious_fraction: 0.2,
        seed: 11,
        membership: None,
    })
    .expect("valid driver");
    let config = HostConfig {
        service: ServiceConfig {
            nodes: 30,
            epoch: SimDuration::from_secs(60),
            ..ServiceConfig::default()
        },
        journal: true,
        checkpoint_every_epochs: 1,
        retain_checkpoints: 2,
        recovery_grace: SimDuration::ZERO,
        journal_segment_bytes: 512, // tiny: many seals per epoch
    };
    let mut opened = Vec::new();
    let mut created = Vec::new();
    for epochs in [4u64, 12] {
        let mut host = ServiceHost::new(config.clone()).expect("valid host");
        driver
            .drive_host(&mut host, epochs, &RetryPolicy::default())
            .expect("clean run");
        let crash_at = host.service().expect("up").now();
        host.crash(crash_at);
        host.restart(crash_at).expect("recovery succeeds");
        let report = host.last_recovery().expect("recovery ran").clone();
        // Every live segment is accounted for: opened or skipped.
        assert_eq!(
            report.segments_opened + report.segments_skipped,
            host.journal().segments().len(),
            "recovery must account for every live segment"
        );
        opened.push(report.segments_opened);
        created.push(host.journal().segments_created());
    }
    assert!(
        created[1] > created[0],
        "a longer run writes more segments overall ({created:?})"
    );
    assert!(
        opened[1] <= opened[0] + 1,
        "segment opens must track the checkpoint cadence, not uptime \
         (opened {opened:?} for segments created {created:?})"
    );
}
