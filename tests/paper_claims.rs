//! The paper's qualitative claims, verified end-to-end at test scale.
//! (The `tsn-bench` binaries regenerate the same artefacts at full scale;
//! these tests pin the *signs* so regressions are caught by `cargo test`.)

use tsn::core::dynamics::{DynamicsConfig, DynamicsState, InteractionDynamics};
use tsn::core::scenario::run_scenario;
use tsn::core::{FacetScores, Optimizer, ScenarioConfig, TrustMetric};
use tsn::graph::metrics::spearman;
use tsn::reputation::PopulationConfig;

fn base(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 50,
        rounds: 14,
        seed,
        population: PopulationConfig::with_malicious(0.25),
        ..ScenarioConfig::default()
    }
}

fn mean<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// Figure 1: satisfaction and trust co-move (positive link).
#[test]
fn fig1_satisfaction_trust_link_is_positive() {
    // Across random configurations, mean satisfaction and mean trust
    // correlate positively.
    let mut sats = Vec::new();
    let mut trusts = Vec::new();
    for seed in 0..8 {
        let mut c = base(100 + seed);
        c.disclosure_level = (seed % 5) as usize;
        c.population = PopulationConfig::with_malicious(0.1 * (seed % 4) as f64);
        let o = run_scenario(c).unwrap();
        sats.push(o.facets.satisfaction);
        trusts.push(o.global_trust);
    }
    let rho = spearman(&sats, &trusts).unwrap();
    assert!(rho > 0.5, "satisfaction↔trust Spearman {rho}");
}

/// Figure 2 (right), claim 1: privacy facet decreases with shared info.
#[test]
fn fig2_privacy_decreases_with_disclosure() {
    let facet = |level: usize| {
        mean((0..3).map(|s| {
            let mut c = base(200 + s);
            c.disclosure_level = level;
            run_scenario(c).unwrap().facets.privacy
        }))
    };
    let lo = facet(0);
    let mid = facet(2);
    let hi = facet(4);
    assert!(lo > mid && mid > hi, "privacy must fall along the ladder: {lo} {mid} {hi}");
}

/// Figure 2 (right), claim 2: reputation power increases with shared info.
#[test]
fn fig2_reputation_increases_with_disclosure() {
    let facet = |level: usize| {
        mean((0..4).map(|s| {
            let mut c = base(300 + s);
            c.disclosure_level = level;
            run_scenario(c).unwrap().facets.reputation
        }))
    };
    let lo = facet(0);
    let hi = facet(4);
    assert!(hi > lo + 0.05, "reputation power must rise with disclosure: {lo} -> {hi}");
}

/// Figure 2 (right), claim 3: the same global satisfaction is reachable
/// from different settings.
#[test]
fn fig2_iso_satisfaction_from_multiple_settings() {
    // Sweep the grid; look for two far-apart configs with near-equal
    // satisfaction facet.
    let mut points = Vec::new();
    for level in 0..5usize {
        for mech_i in 0..2 {
            let mut c = base(400);
            c.disclosure_level = level;
            c.mechanism = if mech_i == 0 {
                tsn::reputation::MechanismKind::Beta
            } else {
                tsn::reputation::MechanismKind::EigenTrust
            };
            let o = run_scenario(c).unwrap();
            points.push((level, mech_i, o.facets.satisfaction));
        }
    }
    let found = points.iter().any(|&(l1, m1, s1)| {
        points
            .iter()
            .any(|&(l2, m2, s2)| (l1 as i32 - l2 as i32).abs() >= 2 && (m1 != m2 || l1 != l2) && (s1 - s2).abs() < 0.05)
    });
    assert!(found, "no iso-satisfaction pair found in {points:?}");
}

/// Figure 2 (left): Area A is non-empty but a strict subset.
#[test]
fn fig2_area_a_nonempty_strict_subset() {
    let base_cfg =
        ScenarioConfig { nodes: 24, rounds: 6, graph_degree: 4, ..ScenarioConfig::default() };
    let mut optimizer = Optimizer::new(base_cfg, TrustMetric::default()).unwrap();
    optimizer.seeds_per_point = 1;
    let sweep = optimizer.sweep();
    let report = optimizer.area_report(&sweep, FacetScores::new(0.5, 0.55, 0.3).unwrap());
    assert!(report.area_a > 0, "Area A must be reachable");
    assert!(report.area_a < report.total, "Area A must exclude some configs");
    assert!(report.area_a <= report.privacy_region.min(report.reputation_region));
}

/// E4: an efficient mechanism judging the majority untrustworthy leaves
/// trust low even though feedback volume persists.
#[test]
fn e4_hostile_majority_low_trust_despite_feedback() {
    let mut hostile = base(500);
    hostile.population = PopulationConfig::with_malicious(0.7);
    hostile.disclosure_level = 4;
    hostile.rounds = 16;
    let o = run_scenario(hostile).unwrap();
    // Feedback volume persists to the last round...
    assert!(o.samples.last().unwrap().reports_filed > 0);
    // ...yet satisfaction (and hence trust) is depressed relative to an
    // honest world.
    let mut honest = base(500);
    honest.population = PopulationConfig::with_malicious(0.0);
    honest.disclosure_level = 4;
    honest.rounds = 16;
    let o_honest = run_scenario(honest).unwrap();
    assert!(
        o.global_trust < o_honest.global_trust - 0.05,
        "hostile {} vs honest {}",
        o.global_trust,
        o_honest.global_trust
    );
}

/// E5: less trust → less disclosure (adaptive users retract willingness).
#[test]
fn e5_distrust_reduces_disclosure() {
    let run = |adaptive: bool| {
        mean((0..3).map(|s| {
            let mut c = base(600 + s);
            c.population = PopulationConfig::with_malicious(0.5);
            c.leak_probability = 0.8;
            c.disclosure_level = 4;
            c.adaptive_disclosure = adaptive;
            c.rounds = 18;
            run_scenario(c).unwrap().mean_willingness
        }))
    };
    assert!(run(true) < run(false), "adaptive distrust must retract disclosure");
}

/// The analytic dynamics reproduce every Figure-1 edge sign.
#[test]
fn dynamics_edge_signs() {
    let d = InteractionDynamics::default();
    let s = DynamicsState::neutral();
    for (src, dst) in [
        ("satisfaction", "trust"),
        ("reputation", "trust"),
        ("reputation", "satisfaction"),
        ("disclosure", "reputation"),
        ("trust", "disclosure"),
        ("privacy", "satisfaction"),
    ] {
        assert!(d.coupling_sign(&s, src, dst) > 0.0, "{src}->{dst} must be positive");
    }
    assert!(d.coupling_sign(&s, "disclosure", "privacy") < 0.0);
}

/// The analytic system converges from every corner of the state space.
#[test]
fn dynamics_global_convergence() {
    let d = InteractionDynamics::new(DynamicsConfig::default());
    let corners = [0.0, 1.0];
    let mut fixed_points = Vec::new();
    for &t in &corners {
        for &s in &corners {
            for &r in &corners {
                let start = DynamicsState {
                    trust: t,
                    satisfaction: s,
                    reputation_efficiency: r,
                    disclosure: 1.0 - t,
                    privacy: 1.0 - s,
                };
                let (fp, steps) = d.fixed_point(start, 1e-9, 20_000);
                assert!(steps < 20_000, "must converge from {start:?}");
                fixed_points.push(fp);
            }
        }
    }
    // All corners converge to the same attractor.
    for fp in &fixed_points[1..] {
        assert!(fp.distance(&fixed_points[0]) < 1e-6, "unique attractor expected");
    }
}
