//! The paper's qualitative claims, verified end-to-end at test scale.
//! (The `tsn-bench` binaries regenerate the same artefacts at full scale;
//! these tests pin the *signs* so regressions are caught by `cargo test`.)

use tsn::core::dynamics::{DynamicsConfig, DynamicsState, InteractionDynamics};
use tsn::core::runner::{DisclosureLevel, ScenarioBuilder};
use tsn::core::{FacetScores, Optimizer, TrustMetric};
use tsn::graph::metrics::spearman;

fn base(seed: u64) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .nodes(50)
        .rounds(14)
        .seed(seed)
        .malicious_fraction(0.25)
}

fn mean<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// Figure 1: satisfaction and trust co-move (positive link).
#[test]
fn fig1_satisfaction_trust_link_is_positive() {
    // Across populations of varying service quality (threat level and
    // disclosure held fixed), mean satisfaction and mean trust co-move:
    // worse service makes users both less satisfied and less trusting.
    // The two knobs held fixed each move trust through *another* facet
    // regardless of satisfaction — disclosure through privacy (the
    // Figure-2 trade-off) and the adversary share through reputation
    // (detection is degenerate at 0% malice) — so varying them would
    // test those couplings, not this link.
    let mut sats = Vec::new();
    let mut trusts = Vec::new();
    for seed in 0..12 {
        let o = base(100 + seed)
            .population(tsn::reputation::PopulationConfig {
                malicious: 0.25,
                honest_quality: 0.5 + 0.04 * (seed % 11) as f64,
                ..Default::default()
            })
            .run()
            .unwrap();
        sats.push(o.facets.satisfaction);
        trusts.push(o.global_trust);
    }
    let rho = spearman(&sats, &trusts).unwrap();
    assert!(rho > 0.5, "satisfaction↔trust Spearman {rho}");
}

/// Figure 2 (right), claim 1: privacy facet decreases with shared info.
#[test]
fn fig2_privacy_decreases_with_disclosure() {
    let facet = |level: DisclosureLevel| {
        mean((0..3).map(|s| {
            base(200 + s)
                .disclosure(level)
                .run()
                .unwrap()
                .facets
                .privacy
        }))
    };
    let lo = facet(DisclosureLevel::Minimal);
    let mid = facet(DisclosureLevel::Timestamped);
    let hi = facet(DisclosureLevel::Full);
    assert!(
        lo > mid && mid > hi,
        "privacy must fall along the ladder: {lo} {mid} {hi}"
    );
}

/// Figure 2 (right), claim 2: reputation power increases with shared info.
#[test]
fn fig2_reputation_increases_with_disclosure() {
    let facet = |level: DisclosureLevel| {
        mean((0..4).map(|s| {
            base(300 + s)
                .disclosure(level)
                .run()
                .unwrap()
                .facets
                .reputation
        }))
    };
    let lo = facet(DisclosureLevel::Minimal);
    let hi = facet(DisclosureLevel::Full);
    assert!(
        hi > lo + 0.05,
        "reputation power must rise with disclosure: {lo} -> {hi}"
    );
}

/// Figure 2 (right), claim 3: the same global satisfaction is reachable
/// from different settings.
#[test]
fn fig2_iso_satisfaction_from_multiple_settings() {
    // Sweep the grid; look for two far-apart configs with near-equal
    // satisfaction facet.
    let mut points = Vec::new();
    for level in DisclosureLevel::ALL {
        for (mech_i, mechanism) in [
            tsn::reputation::MechanismKind::Beta,
            tsn::reputation::MechanismKind::EigenTrust,
        ]
        .into_iter()
        .enumerate()
        {
            let o = base(400)
                .disclosure(level)
                .mechanism(mechanism)
                .run()
                .unwrap();
            points.push((level.index(), mech_i, o.facets.satisfaction));
        }
    }
    let found = points.iter().any(|&(l1, m1, s1)| {
        points.iter().any(|&(l2, m2, s2)| {
            (l1 as i32 - l2 as i32).abs() >= 2 && (m1 != m2 || l1 != l2) && (s1 - s2).abs() < 0.05
        })
    });
    assert!(found, "no iso-satisfaction pair found in {points:?}");
}

/// Figure 2 (left): Area A is non-empty but a strict subset.
#[test]
fn fig2_area_a_nonempty_strict_subset() {
    let base_cfg = ScenarioBuilder::new()
        .nodes(24)
        .rounds(6)
        .graph(4, 0.1)
        .build()
        .unwrap();
    let mut optimizer = Optimizer::new(base_cfg, TrustMetric::default()).unwrap();
    optimizer.seeds_per_point = 1;
    let sweep = optimizer.sweep();
    let report = optimizer.area_report(&sweep, FacetScores::new(0.5, 0.55, 0.3).unwrap());
    assert!(report.area_a > 0, "Area A must be reachable");
    assert!(
        report.area_a < report.total,
        "Area A must exclude some configs"
    );
    assert!(report.area_a <= report.privacy_region.min(report.reputation_region));
}

/// E4: an efficient mechanism judging the majority untrustworthy leaves
/// trust low even though feedback volume persists.
#[test]
fn e4_hostile_majority_low_trust_despite_feedback() {
    let o = base(500)
        .malicious_fraction(0.7)
        .disclosure(DisclosureLevel::Full)
        .rounds(16)
        .run()
        .unwrap();
    // Feedback volume persists to the last round...
    assert!(o.samples.last().unwrap().reports_filed > 0);
    // ...yet satisfaction (and hence trust) is depressed relative to an
    // honest world.
    let o_honest = base(500)
        .malicious_fraction(0.0)
        .disclosure(DisclosureLevel::Full)
        .rounds(16)
        .run()
        .unwrap();
    assert!(
        o.global_trust < o_honest.global_trust - 0.05,
        "hostile {} vs honest {}",
        o.global_trust,
        o_honest.global_trust
    );
}

/// E5: less trust → less disclosure (adaptive users retract willingness).
#[test]
fn e5_distrust_reduces_disclosure() {
    let run = |adaptive: bool| {
        mean((0..3).map(|s| {
            base(600 + s)
                .malicious_fraction(0.5)
                .leak_probability(0.8)
                .disclosure(DisclosureLevel::Full)
                .adaptive_disclosure(adaptive)
                .rounds(18)
                .run()
                .unwrap()
                .mean_willingness
        }))
    };
    assert!(
        run(true) < run(false),
        "adaptive distrust must retract disclosure"
    );
}

/// The analytic dynamics reproduce every Figure-1 edge sign.
#[test]
fn dynamics_edge_signs() {
    let d = InteractionDynamics::default();
    let s = DynamicsState::neutral();
    for (src, dst) in [
        ("satisfaction", "trust"),
        ("reputation", "trust"),
        ("reputation", "satisfaction"),
        ("disclosure", "reputation"),
        ("trust", "disclosure"),
        ("privacy", "satisfaction"),
    ] {
        assert!(
            d.coupling_sign(&s, src, dst) > 0.0,
            "{src}->{dst} must be positive"
        );
    }
    assert!(d.coupling_sign(&s, "disclosure", "privacy") < 0.0);
}

/// The analytic system converges from every corner of the state space.
#[test]
fn dynamics_global_convergence() {
    let d = InteractionDynamics::new(DynamicsConfig::default());
    let corners = [0.0, 1.0];
    let mut fixed_points = Vec::new();
    for &t in &corners {
        for &s in &corners {
            for &r in &corners {
                let start = DynamicsState {
                    trust: t,
                    satisfaction: s,
                    reputation_efficiency: r,
                    disclosure: 1.0 - t,
                    privacy: 1.0 - s,
                };
                let (fp, steps) = d.fixed_point(start, 1e-9, 20_000);
                assert!(steps < 20_000, "must converge from {start:?}");
                fixed_points.push(fp);
            }
        }
    }
    // All corners converge to the same attractor.
    for fp in &fixed_points[1..] {
        assert!(
            fp.distance(&fixed_points[0]) < 1e-6,
            "unique attractor expected"
        );
    }
}
