//! The paper's qualitative claims, verified end-to-end at test scale.
//! (The `tsn-bench` binaries regenerate the same artefacts at full scale;
//! these tests pin the *signs* so regressions are caught by `cargo test`.)

use tsn::core::dynamics::{DynamicsConfig, DynamicsState, InteractionDynamics};
use tsn::core::runner::{DisclosureLevel, ScenarioBuilder};
use tsn::core::{FacetScores, Optimizer, TrustMetric};
use tsn::graph::metrics::spearman;

fn base(seed: u64) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .nodes(50)
        .rounds(14)
        .seed(seed)
        .malicious_fraction(0.25)
}

fn mean<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// Figure 1: satisfaction and trust co-move (positive link).
#[test]
fn fig1_satisfaction_trust_link_is_positive() {
    // Across populations of varying service quality (threat level and
    // disclosure held fixed), mean satisfaction and mean trust co-move:
    // worse service makes users both less satisfied and less trusting.
    // The two knobs held fixed each move trust through *another* facet
    // regardless of satisfaction — disclosure through privacy (the
    // Figure-2 trade-off) and the adversary share through reputation
    // (detection is degenerate at 0% malice) — so varying them would
    // test those couplings, not this link.
    let mut sats = Vec::new();
    let mut trusts = Vec::new();
    for seed in 0..12 {
        let o = base(100 + seed)
            .population(tsn::reputation::PopulationConfig {
                malicious: 0.25,
                honest_quality: 0.5 + 0.04 * (seed % 11) as f64,
                ..Default::default()
            })
            .run()
            .unwrap();
        sats.push(o.facets.satisfaction);
        trusts.push(o.global_trust);
    }
    let rho = spearman(&sats, &trusts).unwrap();
    assert!(rho > 0.5, "satisfaction↔trust Spearman {rho}");
}

/// Figure 2 (right), claim 1: privacy facet decreases with shared info.
#[test]
fn fig2_privacy_decreases_with_disclosure() {
    let facet = |level: DisclosureLevel| {
        mean((0..3).map(|s| {
            base(200 + s)
                .disclosure(level)
                .run()
                .unwrap()
                .facets
                .privacy
        }))
    };
    let lo = facet(DisclosureLevel::Minimal);
    let mid = facet(DisclosureLevel::Timestamped);
    let hi = facet(DisclosureLevel::Full);
    assert!(
        lo > mid && mid > hi,
        "privacy must fall along the ladder: {lo} {mid} {hi}"
    );
}

/// Figure 2 (right), claim 2: reputation power increases with shared info.
#[test]
fn fig2_reputation_increases_with_disclosure() {
    let facet = |level: DisclosureLevel| {
        mean((0..4).map(|s| {
            base(300 + s)
                .disclosure(level)
                .run()
                .unwrap()
                .facets
                .reputation
        }))
    };
    let lo = facet(DisclosureLevel::Minimal);
    let hi = facet(DisclosureLevel::Full);
    assert!(
        hi > lo + 0.05,
        "reputation power must rise with disclosure: {lo} -> {hi}"
    );
}

/// Figure 2 (right), claim 3: the same global satisfaction is reachable
/// from different settings.
#[test]
fn fig2_iso_satisfaction_from_multiple_settings() {
    // Sweep the grid; look for two far-apart configs with near-equal
    // satisfaction facet.
    let mut points = Vec::new();
    for level in DisclosureLevel::ALL {
        for (mech_i, mechanism) in [
            tsn::reputation::MechanismKind::Beta,
            tsn::reputation::MechanismKind::EigenTrust,
        ]
        .into_iter()
        .enumerate()
        {
            let o = base(400)
                .disclosure(level)
                .mechanism(mechanism)
                .run()
                .unwrap();
            points.push((level.index(), mech_i, o.facets.satisfaction));
        }
    }
    let found = points.iter().any(|&(l1, m1, s1)| {
        points.iter().any(|&(l2, m2, s2)| {
            (l1 as i32 - l2 as i32).abs() >= 2 && (m1 != m2 || l1 != l2) && (s1 - s2).abs() < 0.05
        })
    });
    assert!(found, "no iso-satisfaction pair found in {points:?}");
}

/// Figure 2 (left): Area A is non-empty but a strict subset.
#[test]
fn fig2_area_a_nonempty_strict_subset() {
    let base_cfg = ScenarioBuilder::new()
        .nodes(24)
        .rounds(6)
        .graph(4, 0.1)
        .build()
        .unwrap();
    let mut optimizer = Optimizer::new(base_cfg, TrustMetric::default()).unwrap();
    optimizer.seeds_per_point = 1;
    let sweep = optimizer.sweep();
    let report = optimizer.area_report(&sweep, FacetScores::new(0.5, 0.55, 0.3).unwrap());
    assert!(report.area_a > 0, "Area A must be reachable");
    assert!(
        report.area_a < report.total,
        "Area A must exclude some configs"
    );
    assert!(report.area_a <= report.privacy_region.min(report.reputation_region));
}

/// E4: an efficient mechanism judging the majority untrustworthy leaves
/// trust low even though feedback volume persists.
#[test]
fn e4_hostile_majority_low_trust_despite_feedback() {
    let o = base(500)
        .malicious_fraction(0.7)
        .disclosure(DisclosureLevel::Full)
        .rounds(16)
        .run()
        .unwrap();
    // Feedback volume persists to the last round...
    assert!(o.samples.last().unwrap().reports_filed > 0);
    // ...yet satisfaction (and hence trust) is depressed relative to an
    // honest world.
    let o_honest = base(500)
        .malicious_fraction(0.0)
        .disclosure(DisclosureLevel::Full)
        .rounds(16)
        .run()
        .unwrap();
    assert!(
        o.global_trust < o_honest.global_trust - 0.05,
        "hostile {} vs honest {}",
        o.global_trust,
        o_honest.global_trust
    );
}

/// E5: less trust → less disclosure (adaptive users retract willingness).
#[test]
fn e5_distrust_reduces_disclosure() {
    let run = |adaptive: bool| {
        mean((0..3).map(|s| {
            base(600 + s)
                .malicious_fraction(0.5)
                .leak_probability(0.8)
                .disclosure(DisclosureLevel::Full)
                .adaptive_disclosure(adaptive)
                .rounds(18)
                .run()
                .unwrap()
                .mean_willingness
        }))
    };
    assert!(
        run(true) < run(false),
        "adaptive distrust must retract disclosure"
    );
}

/// The analytic dynamics reproduce every Figure-1 edge sign.
#[test]
fn dynamics_edge_signs() {
    let d = InteractionDynamics::default();
    let s = DynamicsState::neutral();
    for (src, dst) in [
        ("satisfaction", "trust"),
        ("reputation", "trust"),
        ("reputation", "satisfaction"),
        ("disclosure", "reputation"),
        ("trust", "disclosure"),
        ("privacy", "satisfaction"),
    ] {
        assert!(
            d.coupling_sign(&s, src, dst) > 0.0,
            "{src}->{dst} must be positive"
        );
    }
    assert!(d.coupling_sign(&s, "disclosure", "privacy") < 0.0);
}

/// The analytic system converges from every corner of the state space.
#[test]
fn dynamics_global_convergence() {
    let d = InteractionDynamics::new(DynamicsConfig::default());
    let corners = [0.0, 1.0];
    let mut fixed_points = Vec::new();
    for &t in &corners {
        for &s in &corners {
            for &r in &corners {
                let start = DynamicsState {
                    trust: t,
                    satisfaction: s,
                    reputation_efficiency: r,
                    disclosure: 1.0 - t,
                    privacy: 1.0 - s,
                };
                let (fp, steps) = d.fixed_point(start, 1e-9, 20_000);
                assert!(steps < 20_000, "must converge from {start:?}");
                fixed_points.push(fp);
            }
        }
    }
    // All corners converge to the same attractor.
    for fp in &fixed_points[1..] {
        assert!(
            fp.distance(&fixed_points[0]) < 1e-6,
            "unique attractor expected"
        );
    }
}

/// The peer-sampling substrate: the paper's gossip model assumes each
/// user can interact with a partner drawn *uniformly* from the live
/// population, yet real deployments only ever hold bounded partial
/// views. The membership overlay closes that gap — this test pins the
/// claim that partner draws from shuffled partial views are
/// statistically indistinguishable from uniform sampling (chi-square
/// over the population, generous threshold to absorb the view's
/// round-to-round correlation).
#[test]
fn peer_sampling_from_shuffled_views_is_uniform() {
    use tsn::simnet::{MembershipConfig, MembershipRuntime, NodeId, SimRng};

    let n = 32usize;
    let config = MembershipConfig {
        view_size: 8,
        shuffle_len: 4,
        healing: 1,
        swap: 3,
        relays: 3,
        relay_fanout: 8,
    };
    let mut runtime = MembershipRuntime::new(n, config, 0x9E37).expect("valid overlay");
    let mut draw_rng = SimRng::seed_from_u64(0x517C_C1B7);
    let mut counts = vec![0u64; n];
    let burn_in = 64;
    let rounds = 64 + 500;
    let mut draws = 0u64;
    for round in 0..rounds {
        runtime.shuffle_round(|_| true, |_, _| true);
        if round < burn_in {
            continue; // let the relay-seeded initial views mix first
        }
        for observer in 0..n {
            if let Some(peer) = runtime
                .view(NodeId::from_index(observer))
                .sample(&mut draw_rng)
            {
                counts[peer.index()] += 1;
                draws += 1;
            }
        }
    }
    // Every ordered pair is equally likely under uniformity, so every
    // target should collect draws/n of the mass (each node is a valid
    // target for the n-1 others; the slight self-exclusion asymmetry
    // is identical across targets).
    let expected = draws as f64 / n as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    // df = n-1 = 31: mean 31, std ~7.9 for i.i.d. draws. Views are
    // correlated across rounds, which inflates the statistic; 3x the
    // df still rejects gross bias (a dead cell alone adds ~expected
    // ≈ 500 to the statistic).
    assert!(
        chi2 < 3.0 * (n as f64 - 1.0),
        "partner draws deviate from uniform: chi2 = {chi2:.1} over {draws} draws, counts {counts:?}"
    );
    // And no peer is starved or hoarded outright.
    let min = *counts.iter().min().expect("nonempty");
    let max = *counts.iter().max().expect("nonempty");
    assert!(
        (min as f64) > 0.5 * expected && (max as f64) < 1.5 * expected,
        "peer draw counts outside [0.5, 1.5]x expected: min {min}, max {max}, expected {expected:.0}"
    );
}
